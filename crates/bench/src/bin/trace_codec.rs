//! `trace_codec` — foray-trace v1 vs v2 size and decode-throughput report.
//!
//! The v2 container exists to make archived traces cheap: length-tagged
//! delta compression per block, CRC32 integrity, and a checkpoint index for
//! seeking. This bin holds it to the claims. For every corpus workload it
//! profiles once, encodes the identical record stream in both container
//! versions, and measures:
//!
//! * **size** — encoded bytes per format and the v1/v2 ratio;
//! * **decode** — streaming [`minic_trace::TraceReader`] drain over the
//!   in-memory file, best-of-N round-robin (v1, v2, repeat), in records/s
//!   — the v2 time *includes* its per-block CRC verification.
//!
//! Both decodes are asserted record-identical to the profiled stream
//! before anything is reported. Writes a machine-readable
//! `foray-codec-bench/v1` JSON report (CI uploads it as
//! `BENCH_codec.json`; a reference run is committed at the repo root).
//!
//! ```text
//! cargo run --release -p foray-bench --bin trace_codec -- \
//!     [--workloads all|a,b] [--scale N] [--iters N] [--quick] \
//!     [--json PATH] [--check-ratio X] [--check-decode Y]
//! ```
//!
//! `--check-ratio X` exits non-zero unless the corpus-total v1/v2 size
//! ratio is at least `X`; `--check-decode Y` exits non-zero unless v2
//! corpus-total decode throughput is at least `Y` times v1's. Both are CI
//! gates on the format; CI pins `--check-ratio 3.0 --check-decode 0.6`.
//! The measured point is ~3.8x smaller files at ~0.75x of v1's records/s
//! (v2 pays CRC verification and delta reconstruction per record) — ~5x
//! cheaper per *file byte*, so replay from any storage slower than
//! ~2 GB/s is bounded by v1's I/O, not v2's decode, and ends ~3x sooner.

use foray_workloads::Params;
use minic_trace::file::{self, FormatVersion};
use minic_trace::{Record, TraceReader};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::{Duration, Instant};

struct Args {
    workloads: Vec<String>,
    scale: u32,
    iters: u32,
    json: Option<String>,
    check_ratio: Option<f64>,
    check_decode: Option<f64>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workloads: vec!["all".to_owned()],
        scale: 2,
        iters: 12,
        json: None,
        check_ratio: None,
        check_decode: None,
    };
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut it = raw.iter();
    let need = |it: &mut std::slice::Iter<'_, String>, flag: &str| {
        it.next().cloned().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workloads" => {
                args.workloads = need(&mut it, "--workloads")?
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(str::to_owned)
                    .collect();
            }
            "--scale" => {
                args.scale =
                    need(&mut it, "--scale")?.parse().map_err(|_| "bad --scale".to_owned())?;
            }
            "--iters" => {
                args.iters =
                    need(&mut it, "--iters")?.parse().map_err(|_| "bad --iters".to_owned())?;
            }
            "--quick" => args.iters = 5,
            "--json" => args.json = Some(need(&mut it, "--json")?),
            "--check-ratio" => {
                args.check_ratio = Some(
                    need(&mut it, "--check-ratio")?
                        .parse()
                        .map_err(|_| "bad --check-ratio".to_owned())?,
                );
            }
            "--check-decode" => {
                args.check_decode = Some(
                    need(&mut it, "--check-decode")?
                        .parse()
                        .map_err(|_| "bad --check-decode".to_owned())?,
                );
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if args.iters == 0 {
        return Err("--iters must be at least 1".to_owned());
    }
    if args.workloads.is_empty() {
        return Err("--workloads needs at least one name".to_owned());
    }
    Ok(args)
}

struct Row {
    name: String,
    records: u64,
    v1_bytes: u64,
    v2_bytes: u64,
    v1_decode: Duration,
    v2_decode: Duration,
}

impl Row {
    fn ratio(&self) -> f64 {
        self.v1_bytes as f64 / self.v2_bytes as f64
    }

    fn mrecs(&self, d: Duration) -> f64 {
        self.records as f64 / d.as_secs_f64() / 1e6
    }

    fn decode_speedup(&self) -> f64 {
        self.v1_decode.as_secs_f64() / self.v2_decode.as_secs_f64()
    }
}

/// Drains a framed in-memory file through the streaming reader, returning
/// the record count (the decode work the wall clock measures).
fn drain(bytes: &[u8]) -> u64 {
    // `fold` is the readers' bulk decode path (one tight loop per block);
    // it is what `stream_into`-based replay uses, so it is what we time.
    TraceReader::new(bytes).expect("framed bytes open").fold(0u64, |n, rec| {
        black_box(rec.expect("framed bytes decode"));
        n + 1
    })
}

fn json_report(args: &Args, rows: &[Row], totals: &Row) -> String {
    // Hand-rolled JSON, like every report in this workspace: the build is
    // offline and dependency-free by construction.
    let mut s = String::new();
    s.push_str("{\n  \"schema\": \"foray-codec-bench/v1\",\n");
    let _ = writeln!(s, "  \"scale\": {},", args.scale);
    let _ = writeln!(s, "  \"iters\": {},", args.iters);
    s.push_str("  \"workloads\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str("    {");
        let _ = write!(s, "\"name\": \"{}\", ", r.name);
        let _ = write!(s, "\"records\": {}, ", r.records);
        let _ = write!(s, "\"v1_bytes\": {}, ", r.v1_bytes);
        let _ = write!(s, "\"v2_bytes\": {}, ", r.v2_bytes);
        let _ = write!(s, "\"size_ratio\": {:.3}, ", r.ratio());
        let _ = write!(s, "\"v1_decode_seconds\": {:.6}, ", r.v1_decode.as_secs_f64());
        let _ = write!(s, "\"v2_decode_seconds\": {:.6}, ", r.v2_decode.as_secs_f64());
        let _ = write!(s, "\"v1_mrecs_per_s\": {:.1}, ", r.mrecs(r.v1_decode));
        let _ = write!(s, "\"v2_mrecs_per_s\": {:.1}, ", r.mrecs(r.v2_decode));
        let _ = write!(s, "\"decode_speedup\": {:.3}", r.decode_speedup());
        s.push_str(if i + 1 < rows.len() { "},\n" } else { "}\n" });
    }
    s.push_str("  ],\n");
    s.push_str("  \"totals\": {");
    let _ = write!(s, "\"records\": {}, ", totals.records);
    let _ = write!(s, "\"v1_bytes\": {}, ", totals.v1_bytes);
    let _ = write!(s, "\"v2_bytes\": {}, ", totals.v2_bytes);
    let _ = write!(s, "\"size_ratio\": {:.3}, ", totals.ratio());
    let _ = write!(s, "\"decode_speedup\": {:.3}", totals.decode_speedup());
    s.push_str("}\n}\n");
    s
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: trace_codec [--workloads all|a,b] [--scale N] [--iters N] [--quick] \
                 [--json PATH] [--check-ratio X] [--check-decode Y]"
            );
            std::process::exit(1);
        }
    };
    let params = Params { scale: args.scale };
    let workloads: Vec<foray_workloads::Workload> = if args.workloads.iter().any(|w| w == "all") {
        foray_workloads::all(params)
    } else {
        args.workloads
            .iter()
            .map(|name| {
                foray_workloads::by_name(name, params).unwrap_or_else(|| {
                    eprintln!("error: unknown workload `{name}`");
                    std::process::exit(1);
                })
            })
            .collect()
    };

    println!(
        "trace_codec: {} workloads at scale {} (best of {} iters)",
        workloads.len(),
        args.scale,
        args.iters
    );

    let mut rows = Vec::new();
    for w in &workloads {
        let prog = w.frontend().expect("workload compiles");
        let (_, records) = minic_sim::run(&prog, &minic_sim::SimConfig::default(), &w.inputs)
            .expect("workload runs");

        let mut v1 = Vec::new();
        file::write_to_with(&mut v1, &records, FormatVersion::V1).expect("v1 encodes");
        let mut v2 = Vec::new();
        file::write_to_with(&mut v2, &records, FormatVersion::V2).expect("v2 encodes");

        // Both files must replay the identical stream before being timed.
        for bytes in [&v1, &v2] {
            let decoded: Vec<Record> =
                TraceReader::new(bytes.as_slice()).unwrap().map(Result::unwrap).collect();
            assert_eq!(decoded, records, "{}: replay must be identical", w.name);
        }

        // Round-robin best-of timing, so a slow scheduling window inflates
        // both formats' samples instead of skewing the ratio.
        let (mut v1_best, mut v2_best) = (Duration::MAX, Duration::MAX);
        for _ in 0..args.iters {
            let start = Instant::now();
            black_box(drain(&v1));
            v1_best = v1_best.min(start.elapsed());
            let start = Instant::now();
            black_box(drain(&v2));
            v2_best = v2_best.min(start.elapsed());
        }

        rows.push(Row {
            name: w.name.to_owned(),
            records: records.len() as u64,
            v1_bytes: v1.len() as u64,
            v2_bytes: v2.len() as u64,
            v1_decode: v1_best,
            v2_decode: v2_best,
        });
    }

    let totals = Row {
        name: "total".to_owned(),
        records: rows.iter().map(|r| r.records).sum(),
        v1_bytes: rows.iter().map(|r| r.v1_bytes).sum(),
        v2_bytes: rows.iter().map(|r| r.v2_bytes).sum(),
        v1_decode: rows.iter().map(|r| r.v1_decode).sum(),
        v2_decode: rows.iter().map(|r| r.v2_decode).sum(),
    };

    let table = foray_bench::render_table(
        &[
            "workload",
            "records",
            "v1 bytes",
            "v2 bytes",
            "ratio",
            "v1 Mrec/s",
            "v2 Mrec/s",
            "speedup",
        ],
        &rows
            .iter()
            .chain(std::iter::once(&totals))
            .map(|r| {
                vec![
                    r.name.clone(),
                    foray_bench::human(r.records),
                    foray_bench::human(r.v1_bytes),
                    foray_bench::human(r.v2_bytes),
                    format!("{:.2}x", r.ratio()),
                    format!("{:.1}", r.mrecs(r.v1_decode)),
                    format!("{:.1}", r.mrecs(r.v2_decode)),
                    format!("{:.2}x", r.decode_speedup()),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("{table}");

    if let Some(path) = &args.json {
        let report = json_report(&args, &rows, &totals);
        if let Err(e) = std::fs::write(path, report) {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        }
        println!("wrote {path} (foray-codec-bench/v1)");
    }
    if let Some(min) = args.check_ratio {
        let got = totals.ratio();
        if got < min {
            eprintln!("FAIL: corpus v1/v2 size ratio {got:.2}x is below the {min:.2}x gate");
            std::process::exit(3);
        }
        println!("size check passed: {got:.2}x >= {min:.2}x");
    }
    if let Some(min) = args.check_decode {
        let got = totals.decode_speedup();
        if got < min {
            eprintln!("FAIL: v2 decode speedup {got:.2}x is below the {min:.2}x gate");
            std::process::exit(3);
        }
        println!("decode check passed: {got:.2}x >= {min:.2}x");
    }
}
