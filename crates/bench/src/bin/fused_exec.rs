//! `fused_exec` — fused profile-and-analyze overhead report.
//!
//! The ROADMAP's streaming goal: analysis should ride the simulation at a
//! small constant factor over bare execution, in bounded memory. This bin
//! measures one corpus workload four ways:
//!
//! * **bare** — simulation into a [`minic_trace::NullSink`]: the floor
//!   every other row is judged against;
//! * **sequential** — the online [`foray::Analyzer`] as the sink (the
//!   paper's constant-space mode);
//! * **streaming** — [`foray::shard::analyze_streaming_with`]: K shard
//!   workers consuming routed blocks over bounded channels while the VM
//!   runs (the fused pipeline this report exists to police);
//! * **buffered** — the legacy [`foray::ShardedAnalyzer`] that holds the
//!   whole routed stream before fanning out (the A/B baseline).
//!
//! All three analysis rows are asserted byte-identical before anything is
//! reported, and the streaming row's buffered-record high-water mark is
//! asserted against its configured ceiling. Writes a machine-readable
//! `foray-fused-bench/v1` JSON report (CI uploads it as `BENCH_fused.json`).
//!
//! ```text
//! cargo run --release -p foray-bench --bin fused_exec -- \
//!     [--workload NAME] [--scale N] [--iters N] [--quick] [--jobs N] \
//!     [--block N] [--json PATH] [--check-overhead X]
//! ```
//!
//! `--check-overhead X` exits non-zero if streaming profile+analyze costs
//! more than `X` times bare execution — the CI gate on the fused pipeline.

use foray::shard::analyze_streaming_with;
use foray::{Analysis, Analyzer, AnalyzerConfig, ShardedAnalyzer};
use foray_workloads::Params;
use minic_trace::NullSink;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

struct Args {
    workload: String,
    scale: u32,
    iters: u32,
    jobs: usize,
    block: usize,
    json: Option<String>,
    check_overhead: Option<f64>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workload: "fftc".to_owned(),
        scale: 2,
        iters: 20,
        jobs: 0,
        block: 0,
        json: None,
        check_overhead: None,
    };
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut it = raw.iter();
    let need = |it: &mut std::slice::Iter<'_, String>, flag: &str| {
        it.next().cloned().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workload" => args.workload = need(&mut it, "--workload")?,
            "--scale" => {
                args.scale =
                    need(&mut it, "--scale")?.parse().map_err(|_| "bad --scale".to_owned())?;
            }
            "--iters" => {
                args.iters =
                    need(&mut it, "--iters")?.parse().map_err(|_| "bad --iters".to_owned())?;
            }
            // One round is ~20 ms on corpus workloads, so "quick" can
            // still afford enough rounds for best-of to shake off
            // shared-runner scheduling noise in the overhead ratio.
            "--quick" => args.iters = 12,
            "--jobs" => {
                args.jobs =
                    need(&mut it, "--jobs")?.parse().map_err(|_| "bad --jobs".to_owned())?;
            }
            "--block" => {
                args.block =
                    need(&mut it, "--block")?.parse().map_err(|_| "bad --block".to_owned())?;
            }
            "--json" => args.json = Some(need(&mut it, "--json")?),
            "--check-overhead" => {
                args.check_overhead = Some(
                    need(&mut it, "--check-overhead")?
                        .parse()
                        .map_err(|_| "bad --check-overhead".to_owned())?,
                );
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if args.iters == 0 {
        return Err("--iters must be at least 1".to_owned());
    }
    Ok(args)
}

struct Row {
    mode: &'static str,
    seconds: Duration,
    overhead: f64,
}

/// Time one run, folding it into a best-so-far. The modes are measured
/// round-robin (bare, sequential, streaming, buffered, repeat) rather
/// than block-by-block, so a slow scheduling window on a shared machine
/// inflates every mode's sample equally instead of skewing one ratio.
fn timed<T>(best: &mut Duration, run: impl FnOnce() -> T) -> T {
    let start = Instant::now();
    let value = run();
    *best = (*best).min(start.elapsed());
    value
}

fn json_report(
    args: &Args,
    shards: usize,
    records: u64,
    bare: Duration,
    rows: &[Row],
    stats: foray::StreamStats,
) -> String {
    // Hand-rolled JSON, like every report in this workspace: the build is
    // offline and dependency-free by construction.
    let mut s = String::new();
    s.push_str("{\n  \"schema\": \"foray-fused-bench/v1\",\n");
    let _ = writeln!(s, "  \"workload\": \"{}\",", args.workload);
    let _ = writeln!(s, "  \"scale\": {},", args.scale);
    let _ = writeln!(s, "  \"iters\": {},", args.iters);
    let _ = writeln!(s, "  \"shards\": {shards},");
    let _ = writeln!(s, "  \"records\": {records},");
    let _ = writeln!(s, "  \"bare_seconds\": {:.6},", bare.as_secs_f64());
    s.push_str("  \"modes\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str("    {");
        let _ = write!(s, "\"mode\": \"{}\", ", r.mode);
        let _ = write!(s, "\"seconds\": {:.6}, ", r.seconds.as_secs_f64());
        let _ = write!(s, "\"overhead_vs_bare\": {:.3}", r.overhead);
        s.push_str(if i + 1 < rows.len() { "},\n" } else { "}\n" });
    }
    s.push_str("  ],\n");
    let _ = writeln!(s, "  \"peak_buffered_records\": {},", stats.peak_buffered_records);
    let _ = writeln!(s, "  \"max_buffered_records\": {}", stats.max_buffered_records);
    s.push_str("}\n");
    s
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: fused_exec [--workload NAME] [--scale N] [--iters N] [--quick] \
                 [--jobs N] [--block N] [--json PATH] [--check-overhead X]"
            );
            std::process::exit(1);
        }
    };
    let params = Params { scale: args.scale };
    let Some(w) = foray_workloads::by_name(&args.workload, params) else {
        eprintln!("error: unknown workload `{}`", args.workload);
        std::process::exit(1);
    };
    let prog = w.frontend().expect("workload compiles");
    let sim = minic_sim::SimConfig::default();
    let mut config = AnalyzerConfig { shards: args.jobs, ..AnalyzerConfig::default() };
    if args.block > 0 {
        config.stream.block_records = args.block;
    }
    let shards = foray::resolve_shards(config.shards);

    println!(
        "fused_exec: {} at scale {} on {} shard workers (best of {} iters)",
        w.name, args.scale, shards, args.iters
    );

    let (mut bare, mut seq_time, mut stream_time, mut buf_time) =
        (Duration::MAX, Duration::MAX, Duration::MAX, Duration::MAX);
    let (mut records, mut last) = (0u64, None);
    for _ in 0..args.iters {
        records = timed(&mut bare, || {
            let mut sink = NullSink;
            let outcome = minic_sim::run_with_sink(&prog, &sim, &w.inputs, &mut sink)
                .expect("workload runs bare");
            outcome.accesses + outcome.checkpoints
        });
        let sequential = timed(&mut seq_time, || {
            let mut analyzer = Analyzer::with_config(config.clone());
            minic_sim::run_with_sink(&prog, &sim, &w.inputs, &mut analyzer)
                .expect("workload runs sequentially");
            analyzer.into_analysis()
        });
        let (streaming, stats) = timed(&mut stream_time, || {
            let (analysis, _, stats) = analyze_streaming_with(&config, |mut sink| {
                minic_sim::run_with_sink(&prog, &sim, &w.inputs, &mut sink)
            })
            .expect("workload runs streaming");
            (analysis, stats)
        });
        let buffered = timed(&mut buf_time, || {
            let mut sharded = ShardedAnalyzer::with_config(config.clone());
            minic_sim::run_with_sink(&prog, &sim, &w.inputs, &mut sharded)
                .expect("workload runs buffered");
            sharded.into_analysis()
        });
        last = Some((sequential, streaming, buffered, stats));
    }
    let (sequential, streaming, buffered, stats) = last.expect("iters >= 1");

    assert_eq!(streaming, sequential, "streaming must be byte-identical to sequential");
    assert_eq!(buffered, sequential, "buffered must be byte-identical to sequential");
    assert!(
        stats.peak_buffered_records <= stats.max_buffered_records,
        "peak buffered records {} over the configured ceiling {}",
        stats.peak_buffered_records,
        stats.max_buffered_records
    );
    let _: &Analysis = &sequential;

    let overhead = |d: Duration| d.as_secs_f64() / bare.as_secs_f64();
    let rows = [
        Row { mode: "sequential", seconds: seq_time, overhead: overhead(seq_time) },
        Row { mode: "streaming", seconds: stream_time, overhead: overhead(stream_time) },
        Row { mode: "buffered", seconds: buf_time, overhead: overhead(buf_time) },
    ];
    let table = foray_bench::render_table(
        &["mode", "records", "time", "vs bare"],
        &std::iter::once(vec![
            "bare".to_owned(),
            foray_bench::human(records),
            format!("{:.1} ms", bare.as_secs_f64() * 1e3),
            "1.00x".to_owned(),
        ])
        .chain(rows.iter().map(|r| {
            vec![
                r.mode.to_owned(),
                foray_bench::human(records),
                format!("{:.1} ms", r.seconds.as_secs_f64() * 1e3),
                format!("{:.2}x", r.overhead),
            ]
        }))
        .collect::<Vec<_>>(),
    );
    println!("{table}");
    println!(
        "streaming buffered {} of {} records max ({} peak)",
        stats.max_buffered_records, records, stats.peak_buffered_records
    );

    if let Some(path) = &args.json {
        let report = json_report(&args, shards, records, bare, &rows, stats);
        if let Err(e) = std::fs::write(path, report) {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        }
        println!("wrote {path} (foray-fused-bench/v1)");
    }
    if let Some(max) = args.check_overhead {
        let got = rows[1].overhead;
        if got > max {
            eprintln!("FAIL: streaming overhead {got:.2}x is above the {max:.2}x gate");
            std::process::exit(3);
        }
        println!("check passed: {got:.2}x <= {max:.2}x");
    }
}
