//! Phase II design-space exploration over the whole workload corpus:
//! capacities × energy presets × the workload corpus, in parallel, with
//! Pareto-front reporting.
//!
//! ```text
//! cargo run --release -p foray-bench --bin dse [scale] [--jobs N] [--json PATH]
//! ```

use foray_workloads::Params;
use std::process::ExitCode;

const USAGE: &str = "usage: dse [scale] [--jobs N] [--json PATH]";

fn main() -> ExitCode {
    let mut scale: u32 = 1;
    let mut jobs: usize = 0;
    let mut json: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--jobs" => {
                let Some(n) = it.next().and_then(|s| s.parse().ok()) else {
                    eprintln!("--jobs needs a number\n{USAGE}");
                    return ExitCode::FAILURE;
                };
                jobs = n;
            }
            "--json" => {
                let Some(path) = it.next() else {
                    eprintln!("--json needs a path\n{USAGE}");
                    return ExitCode::FAILURE;
                };
                json = Some(path);
            }
            other => {
                let Ok(n) = other.parse::<u32>() else {
                    eprintln!("unknown argument `{other}`\n{USAGE}");
                    return ExitCode::FAILURE;
                };
                scale = n.max(1);
            }
        }
    }
    let result = match foray_bench::dse_space(Params { scale }).explore(jobs) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("dse failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", result.render_text());
    if let Err(e) = result.check() {
        eprintln!("invariant violated: {e}");
        return ExitCode::FAILURE;
    }
    if let Some(path) = json {
        if let Err(e) = std::fs::write(&path, result.to_json()) {
            eprintln!("cannot write `{path}`: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
