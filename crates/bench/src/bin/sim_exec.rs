//! `sim_exec` — execution-engine throughput report (tree-walker vs VM).
//!
//! Measures profiling throughput of both engines on a corpus workload and
//! writes a machine-readable `foray-sim-bench/v1` JSON report so the
//! repo's perf trajectory is comparable across commits (CI uploads it as
//! the `BENCH_sim.json` artifact).
//!
//! Two numbers per engine:
//!
//! * **profile** — simulation with a [`minic_trace::CountingSink`]: the
//!   engine's own cost of generating the trace (the headline comparison;
//!   VM compile time is included in its wall-clock);
//! * **pipeline** — the full `ForayGen` flow with the online analyzer as
//!   the sink: what end-to-end users observe.
//!
//! ```text
//! cargo run --release -p foray-bench --bin sim_exec -- \
//!     [--workload NAME] [--scale N] [--iters N] [--quick] \
//!     [--json PATH] [--check-speedup X]
//! ```
//!
//! `--check-speedup X` exits non-zero unless the VM's profile throughput
//! is at least `X` times the tree-walker's — the CI gate for the engine's
//! reason to exist.

use foray::{Engine, ForayGen};
use foray_workloads::Params;
use minic_trace::CountingSink;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

struct Args {
    workload: String,
    scale: u32,
    iters: u32,
    json: Option<String>,
    check_speedup: Option<f64>,
}

fn parse_args() -> Result<Args, String> {
    let mut args =
        Args { workload: "fftc".to_owned(), scale: 2, iters: 5, json: None, check_speedup: None };
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut it = raw.iter();
    let need = |it: &mut std::slice::Iter<'_, String>, flag: &str| {
        it.next().cloned().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workload" => args.workload = need(&mut it, "--workload")?,
            "--scale" => {
                args.scale =
                    need(&mut it, "--scale")?.parse().map_err(|_| "bad --scale".to_owned())?;
            }
            "--iters" => {
                args.iters =
                    need(&mut it, "--iters")?.parse().map_err(|_| "bad --iters".to_owned())?;
            }
            "--quick" => args.iters = 2,
            "--json" => args.json = Some(need(&mut it, "--json")?),
            "--check-speedup" => {
                args.check_speedup = Some(
                    need(&mut it, "--check-speedup")?
                        .parse()
                        .map_err(|_| "bad --check-speedup".to_owned())?,
                );
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if args.iters == 0 {
        return Err("--iters must be at least 1".to_owned());
    }
    Ok(args)
}

struct EngineRow {
    engine: Engine,
    records: u64,
    /// Best-of-N wall time for trace generation into a counting sink.
    profile: Duration,
    /// Best-of-N wall time for the full pipeline (online analyzer sink).
    pipeline: Duration,
}

impl EngineRow {
    fn profile_rate(&self) -> f64 {
        self.records as f64 / self.profile.as_secs_f64()
    }
}

fn measure(w: &foray_workloads::Workload, engine: Engine, iters: u32) -> EngineRow {
    let prog = w.frontend().expect("workload compiles");
    let config = minic_sim::SimConfig { engine, ..minic_sim::SimConfig::default() };
    let mut records = 0u64;
    let mut profile = Duration::MAX;
    for _ in 0..iters {
        let mut sink = CountingSink::new();
        let start = Instant::now();
        let outcome =
            minic_sim::run_with_sink(&prog, &config, &w.inputs, &mut sink).expect("workload runs");
        profile = profile.min(start.elapsed());
        records = outcome.accesses + outcome.checkpoints;
        assert_eq!(sink.total(), records, "sink saw every record");
    }
    let mut pipeline = Duration::MAX;
    for _ in 0..iters {
        let gen = ForayGen::new().engine(engine);
        let start = Instant::now();
        let out = w.run_with(gen).expect("pipeline runs");
        pipeline = pipeline.min(start.elapsed());
        assert_eq!(out.sim.accesses + out.sim.checkpoints, records, "engines saw equal traffic");
    }
    EngineRow { engine, records, profile, pipeline }
}

fn json_report(workload: &str, scale: u32, iters: u32, rows: &[EngineRow], speedup: f64) -> String {
    // Hand-rolled JSON, like the dse report: the workspace is offline and
    // dependency-free by construction.
    let mut s = String::new();
    s.push_str("{\n  \"schema\": \"foray-sim-bench/v1\",\n");
    let _ = writeln!(s, "  \"workload\": \"{workload}\",");
    let _ = writeln!(s, "  \"scale\": {scale},");
    let _ = writeln!(s, "  \"iters\": {iters},");
    s.push_str("  \"engines\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str("    {");
        let _ = write!(s, "\"engine\": \"{}\", ", r.engine.as_str());
        let _ = write!(s, "\"records\": {}, ", r.records);
        let _ = write!(s, "\"profile_seconds\": {:.6}, ", r.profile.as_secs_f64());
        let _ = write!(s, "\"profile_records_per_sec\": {:.0}, ", r.profile_rate());
        let _ = write!(s, "\"pipeline_seconds\": {:.6}", r.pipeline.as_secs_f64());
        s.push_str(if i + 1 < rows.len() { "},\n" } else { "}\n" });
    }
    s.push_str("  ],\n");
    let _ = writeln!(s, "  \"vm_profile_speedup\": {speedup:.3}");
    s.push_str("}\n");
    s
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: sim_exec [--workload NAME] [--scale N] [--iters N] [--quick] \
                 [--json PATH] [--check-speedup X]"
            );
            std::process::exit(1);
        }
    };
    let params = Params { scale: args.scale };
    let Some(w) = foray_workloads::by_name(&args.workload, params) else {
        eprintln!("error: unknown workload `{}`", args.workload);
        std::process::exit(1);
    };

    println!("sim_exec: {} at scale {} (best of {} iters)", w.name, args.scale, args.iters);
    let rows = [Engine::Tree, Engine::Vm].map(|e| measure(&w, e, args.iters));
    let table = foray_bench::render_table(
        &["engine", "records", "profile", "Mrec/s", "pipeline"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.engine.as_str().to_owned(),
                    foray_bench::human(r.records),
                    format!("{:.1} ms", r.profile.as_secs_f64() * 1e3),
                    format!("{:.2}", r.profile_rate() / 1e6),
                    format!("{:.1} ms", r.pipeline.as_secs_f64() * 1e3),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("{table}");

    let speedup = rows[0].profile.as_secs_f64() / rows[1].profile.as_secs_f64();
    let pipeline_speedup = rows[0].pipeline.as_secs_f64() / rows[1].pipeline.as_secs_f64();
    println!("vm speedup: {speedup:.2}x profiling, {pipeline_speedup:.2}x full pipeline");

    if let Some(path) = &args.json {
        let report = json_report(w.name, args.scale, args.iters, &rows, speedup);
        if let Err(e) = std::fs::write(path, report) {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        }
        println!("wrote {path} (foray-sim-bench/v1)");
    }
    if let Some(min) = args.check_speedup {
        if speedup < min {
            eprintln!("FAIL: VM profiling speedup {speedup:.2}x is below the {min:.2}x gate");
            std::process::exit(3);
        }
        println!("check passed: {speedup:.2}x >= {min:.2}x");
    }
}
