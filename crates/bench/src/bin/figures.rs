//! Regenerates the paper's worked figures as runnable demonstrations:
//!
//! * `fig2` — the Fig. 1 excerpts and their FORAY models (Fig. 2);
//! * `fig4` — the complete Fig. 4 walk-through (annotation, trace, model);
//! * `fig7` — both partial-affine scenarios;
//! * `fig9` — the inlining-hint example.
//!
//! ```text
//! cargo run -p foray-bench --bin figures -- [fig2|fig4|fig7|fig9|all]
//! ```

use foray::{FilterConfig, ForayGen};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".to_owned());
    if matches!(which.as_str(), "fig2" | "all") {
        fig2()?;
    }
    if matches!(which.as_str(), "fig4" | "all") {
        fig4()?;
    }
    if matches!(which.as_str(), "fig7" | "all") {
        fig7()?;
    }
    if matches!(which.as_str(), "fig9" | "all") {
        fig9()?;
    }
    Ok(())
}

fn banner(s: &str) {
    println!("\n==================== {s} ====================");
}

fn fig2() -> Result<(), foray::PipelineError> {
    banner("Figure 1 -> Figure 2");
    let excerpts: [(&str, &str, FilterConfig); 2] = [
        (
            "*last_bitpos_ptr++ = -1 over components x coefficients",
            "int last_bitpos[192]; int *last_bitpos_ptr;
             void main() {
                 int ci; int coefi;
                 last_bitpos_ptr = last_bitpos;
                 for (ci = 0; ci < 3; ci++) {
                     for (coefi = 0; coefi < 64; coefi++) { *last_bitpos_ptr++ = -1; }
                 }
             }",
            FilterConfig::default(),
        ),
        (
            "result[currow++] = workspace inside while/for",
            "int workspace[1024]; int *result[16]; int currow;
             void main() {
                 int i;
                 currow = 0;
                 while (currow < 16) {
                     for (i = 4; i > 0; i--) { result[currow] = workspace; currow++; }
                 }
             }",
            FilterConfig { n_exec: 16, n_loc: 10 },
        ),
    ];
    for (title, src, filter) in excerpts {
        println!("\n-- {title} --");
        let out = ForayGen::new().filter(filter).run_source(src)?;
        print!("{}", out.code);
    }
    Ok(())
}

fn fig4() -> Result<(), foray::PipelineError> {
    banner("Figure 4");
    let src = "char q[10000]; char *ptr;
        void main() {
            int i; int t1 = 98;
            ptr = q;
            while (t1 < 100) {
                t1++;
                ptr += 100;
                for (i = 40; i > 37; i--) { *ptr++ = i * i % 256; }
            }
        }";
    let out = ForayGen::new().filter(FilterConfig { n_exec: 6, n_loc: 6 }).run_source(src)?;
    println!("annotated program:\n{}", minic::pretty(&out.program));
    println!("FORAY model:\n{}", out.code);
    let r = &out.model.refs[0];
    println!(
        "paper expects coefficients (1, 103) and trips (3, 2): got ({}, {}) and ({}, {})",
        r.terms[0].coeff,
        r.terms[1].coeff,
        out.model.loops[&r.node_path[0]].trip,
        out.model.loops[&r.node_path[1]].trip
    );
    Ok(())
}

fn fig7() -> Result<(), foray::PipelineError> {
    banner("Figure 7: partial affine index expressions");
    println!("\n-- case 1: stack-reallocated local array --");
    let out = ForayGen::new().run_source(
        "int src[4000]; int sink;
         int foo(int x) {
             int a[100]; int i; int j; int ret;
             ret = 0;
             for (i = 0; i < 10; i++) {
                 for (j = 0; j < 10; j++) { a[j + 10*i] = x; ret += a[j + 10*i]; }
             }
             return ret;
         }
         int wrap(int x) { return foo(x); }
         void main() {
             int x; int tmp; tmp = 0;
             for (x = 0; x < 10; x++) {
                 if (x % 2) { tmp += foo(x); } else { tmp += wrap(x); }
             }
             sink = tmp;
         }",
    )?;
    print!("{}", out.code);
    println!("\n-- case 2: data-dependent offset parameter --");
    let out =
        ForayGen::new().inputs(vec![0, 700, 160, 2400, 1000, 40, 3333, 90, 2048, 512]).run_source(
            "int A[4000]; int sink;
             int foo(int offset) {
                 int ret; int i; int j; ret = 0;
                 for (i = 0; i < 10; i++) {
                     for (j = 0; j < 10; j++) { ret += A[j + 10*i + offset]; }
                 }
                 return ret;
             }
             void main() {
                 int x; int tmp; tmp = 0;
                 for (x = 0; x < 10; x++) { tmp += foo(input(x)); }
                 sink = tmp;
             }",
        )?;
    print!("{}", out.code);
    Ok(())
}

fn fig9() -> Result<(), foray::PipelineError> {
    banner("Figure 9: inlining hints");
    let out = ForayGen::new().run_source(
        "int A[1000];
         int foo(int offset) {
             int ret; int i; ret = 0;
             for (i = 0; i < 10; i++) { ret += A[i + offset]; }
             return ret;
         }
         void main() {
             int x; int y; int tmp; tmp = 0;
             for (x = 0; x < 10; x++) { tmp += foo(10 * x); }
             for (y = 0; y < 20; y++) { tmp += foo(2 * y); }
             print_int(tmp);
         }",
    )?;
    print!("{}", out.code);
    for h in &out.hints {
        println!(
            "hint: duplicate `{}` — its loop {} runs in {} contexts ({})",
            h.function,
            h.loop_id,
            h.contexts.len(),
            h.context_paths.join(" | ")
        );
    }
    Ok(())
}
