//! The paper's stated future work: sensitivity of the FORAY model to the
//! input data set used for profiling. Profiles each workload under several
//! input seeds and reports model stability (fraction of references whose
//! affine terms survive an input change).
//!
//! ```text
//! cargo run -p foray-bench --bin sensitivity [seeds]
//! ```

use foray_bench::render_table;
use foray_workloads::{all, input, Params};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seeds: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(4);
    let mut rows = Vec::new();
    for workload in all(Params::default()) {
        let base = workload.run()?;
        let mut min_stability = 1.0f64;
        let mut worst = foray::ModelDiff::default();
        for seed in 1..=seeds {
            let mut alt = workload.clone();
            let n = alt.inputs.len();
            alt.inputs = match workload.name {
                "jpegc" | "susanc" => input::image(seed.wrapping_mul(0x9e37), n, 1),
                _ => input::audio(seed.wrapping_mul(0x9e37), n),
            };
            let out = alt.run()?;
            let diff = base.model.diff(&out.model);
            if diff.stability() < min_stability {
                min_stability = diff.stability();
                worst = diff;
            }
        }
        rows.push(vec![
            workload.name.to_string(),
            base.model.ref_count().to_string(),
            format!("{:.1}%", 100.0 * min_stability),
            worst.changed.to_string(),
            (worst.only_left + worst.only_right).to_string(),
        ]);
    }
    println!("Model stability across {seeds} alternative input sets\n");
    println!(
        "{}",
        render_table(
            &["benchmark", "model refs", "min stability", "changed", "appear/vanish"],
            &rows
        )
    );
    println!("stability = references whose affine terms survive the input change;");
    println!("the paper left this study as future work (Section 6).");
    Ok(())
}
