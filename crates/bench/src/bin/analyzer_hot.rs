//! `analyzer_hot` — analyzer hot-path and streaming scale-out report.
//!
//! Companion to `fused_exec`, focused on the two costs this repo's
//! hot-path overhaul attacks: the per-record analysis cost itself (dense
//! instruction-indexed dispatch vs the legacy hash lookup) and the
//! checkpoint fan-out cost of the sharded streaming fabric (compacted
//! context deltas vs broadcast). One workload is measured five ways:
//!
//! * **bare** — simulation into a [`minic_trace::NullSink`]: the floor;
//! * **seq-hash** — the online [`foray::Analyzer`] with
//!   [`LookupStrategy::Hash`], the pre-overhaul hot path;
//! * **sequential** — the same analyzer with the default
//!   [`LookupStrategy::Dense`] tables and last-instruction memo;
//! * **stream-k2** — [`foray::shard::analyze_streaming_with`] at K=2, the
//!   configuration the fused overhead gate polices;
//! * **stream-auto** — the same pipeline at auto-K
//!   ([`foray::resolve_shards`]).
//!
//! A second sweep runs streaming K=2 vs auto-K over the whole corpus:
//! with compacted checkpoint routing, auto-K must not be slower than the
//! old pinned K=2 default on any host. All analysis rows are asserted
//! byte-identical before anything is reported. Writes a machine-readable
//! `foray-analyzer-bench/v1` JSON report (CI uploads it as
//! `BENCH_analyzer.json`).
//!
//! ```text
//! cargo run --release -p foray-bench --bin analyzer_hot -- \
//!     [--workload NAME] [--scale N] [--iters N] [--quick] [--block N] \
//!     [--json PATH] [--check-overhead X] [--check-autok]
//! ```
//!
//! `--check-overhead X` exits non-zero if streaming profile+analyze at
//! K=2 costs more than `X` times bare execution; `--check-autok` exits
//! non-zero if the corpus-total auto-K time exceeds K=2 by more than the
//! measurement-noise margin. Both are CI gates.

use foray::shard::{analyze_streaming_produce, RecordProducer};
use foray::{Analysis, Analyzer, AnalyzerConfig, LookupStrategy};
use foray_workloads::Params;
use minic_trace::{NullSink, TraceSink};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// The VM as a statically dispatched record producer: the configuration
/// every throughput-sensitive caller should use (the closure-based
/// `analyze_streaming_with` pays a virtual call per record).
struct VmProducer<'a> {
    prog: &'a minic::Program,
    sim: &'a minic_sim::SimConfig,
    inputs: &'a [i64],
}

impl RecordProducer for VmProducer<'_> {
    type Out = minic_sim::SimOutcome;
    type Err = minic_sim::RuntimeError;
    fn produce<S: TraceSink>(self, sink: &mut S) -> Result<Self::Out, Self::Err> {
        minic_sim::run_with_sink(self.prog, self.sim, self.inputs, sink)
    }
}

/// Noise margin for the auto-vs-K2 gate: best-of-N timing on shared
/// runners still jitters a few percent, and "no slower" must not flake.
const AUTOK_NOISE_MARGIN: f64 = 1.10;

struct Args {
    workload: String,
    scale: u32,
    iters: u32,
    block: usize,
    json: Option<String>,
    check_overhead: Option<f64>,
    check_autok: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workload: "fftc".to_owned(),
        scale: 2,
        iters: 20,
        block: 0,
        json: None,
        check_overhead: None,
        check_autok: false,
    };
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut it = raw.iter();
    let need = |it: &mut std::slice::Iter<'_, String>, flag: &str| {
        it.next().cloned().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workload" => args.workload = need(&mut it, "--workload")?,
            "--scale" => {
                args.scale =
                    need(&mut it, "--scale")?.parse().map_err(|_| "bad --scale".to_owned())?;
            }
            "--iters" => {
                args.iters =
                    need(&mut it, "--iters")?.parse().map_err(|_| "bad --iters".to_owned())?;
            }
            // Enough best-of rounds to shake off scheduler noise in the
            // gated ratios while staying CI-cheap.
            "--quick" => args.iters = 10,
            "--block" => {
                args.block =
                    need(&mut it, "--block")?.parse().map_err(|_| "bad --block".to_owned())?;
            }
            "--json" => args.json = Some(need(&mut it, "--json")?),
            "--check-overhead" => {
                args.check_overhead = Some(
                    need(&mut it, "--check-overhead")?
                        .parse()
                        .map_err(|_| "bad --check-overhead".to_owned())?,
                );
            }
            "--check-autok" => args.check_autok = true,
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if args.iters == 0 {
        return Err("--iters must be at least 1".to_owned());
    }
    Ok(args)
}

struct Row {
    mode: &'static str,
    seconds: Duration,
    overhead: f64,
}

struct CorpusRow {
    workload: &'static str,
    records: u64,
    k2: Duration,
    auto: Duration,
}

/// Time one run, folding it into a best-so-far. Modes are measured
/// round-robin so a slow scheduling window inflates every mode's sample
/// equally instead of skewing one ratio.
fn timed<T>(best: &mut Duration, run: impl FnOnce() -> T) -> T {
    let start = Instant::now();
    let value = run();
    *best = (*best).min(start.elapsed());
    value
}

fn stream_config(shards: usize, block: usize) -> AnalyzerConfig {
    let mut config = AnalyzerConfig { shards, ..AnalyzerConfig::default() };
    if block > 0 {
        config.stream.block_records = block;
    }
    config
}

fn json_report(
    args: &Args,
    auto_shards: usize,
    records: u64,
    bare: Duration,
    rows: &[Row],
    corpus: &[CorpusRow],
    autok_ratio: f64,
) -> String {
    // Hand-rolled JSON, like every report in this workspace: the build is
    // offline and dependency-free by construction.
    let mut s = String::new();
    s.push_str("{\n  \"schema\": \"foray-analyzer-bench/v1\",\n");
    let _ = writeln!(s, "  \"workload\": \"{}\",", args.workload);
    let _ = writeln!(s, "  \"scale\": {},", args.scale);
    let _ = writeln!(s, "  \"iters\": {},", args.iters);
    let _ = writeln!(s, "  \"auto_shards\": {auto_shards},");
    let _ = writeln!(s, "  \"records\": {records},");
    let _ = writeln!(s, "  \"bare_seconds\": {:.6},", bare.as_secs_f64());
    s.push_str("  \"modes\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str("    {");
        let _ = write!(s, "\"mode\": \"{}\", ", r.mode);
        let _ = write!(s, "\"seconds\": {:.6}, ", r.seconds.as_secs_f64());
        let _ = write!(s, "\"overhead_vs_bare\": {:.3}", r.overhead);
        s.push_str(if i + 1 < rows.len() { "},\n" } else { "}\n" });
    }
    s.push_str("  ],\n  \"corpus\": [\n");
    for (i, c) in corpus.iter().enumerate() {
        s.push_str("    {");
        let _ = write!(s, "\"workload\": \"{}\", ", c.workload);
        let _ = write!(s, "\"records\": {}, ", c.records);
        let _ = write!(s, "\"k2_seconds\": {:.6}, ", c.k2.as_secs_f64());
        let _ = write!(s, "\"auto_seconds\": {:.6}", c.auto.as_secs_f64());
        s.push_str(if i + 1 < corpus.len() { "},\n" } else { "}\n" });
    }
    s.push_str("  ],\n");
    let _ = writeln!(s, "  \"autok_vs_k2_ratio\": {autok_ratio:.3}");
    s.push_str("}\n");
    s
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: analyzer_hot [--workload NAME] [--scale N] [--iters N] [--quick] \
                 [--block N] [--json PATH] [--check-overhead X] [--check-autok]"
            );
            std::process::exit(1);
        }
    };
    let params = Params { scale: args.scale };
    let Some(w) = foray_workloads::by_name(&args.workload, params) else {
        eprintln!("error: unknown workload `{}`", args.workload);
        std::process::exit(1);
    };
    let prog = w.frontend().expect("workload compiles");
    let sim = minic_sim::SimConfig::default();
    let auto_shards = foray::resolve_shards(0);

    println!(
        "analyzer_hot: {} at scale {}, auto-K {} (best of {} iters)",
        w.name, args.scale, auto_shards, args.iters
    );

    let hash_config = AnalyzerConfig { lookup: LookupStrategy::Hash, ..AnalyzerConfig::default() };
    let dense_config = AnalyzerConfig::default();
    let k2_config = stream_config(2, args.block);
    let auto_config = stream_config(0, args.block);

    let (mut bare, mut hash_t, mut dense_t, mut k2_t, mut auto_t) =
        (Duration::MAX, Duration::MAX, Duration::MAX, Duration::MAX, Duration::MAX);
    let (mut records, mut last) = (0u64, None);
    for _ in 0..args.iters {
        records = timed(&mut bare, || {
            let mut sink = NullSink;
            let outcome = minic_sim::run_with_sink(&prog, &sim, &w.inputs, &mut sink)
                .expect("workload runs bare");
            outcome.accesses + outcome.checkpoints
        });
        let hashed = timed(&mut hash_t, || {
            let mut analyzer = Analyzer::with_config(hash_config.clone());
            minic_sim::run_with_sink(&prog, &sim, &w.inputs, &mut analyzer)
                .expect("workload runs with hash lookup");
            analyzer.into_analysis()
        });
        let dense = timed(&mut dense_t, || {
            let mut analyzer = Analyzer::with_config(dense_config.clone());
            minic_sim::run_with_sink(&prog, &sim, &w.inputs, &mut analyzer)
                .expect("workload runs with dense lookup");
            analyzer.into_analysis()
        });
        let (k2, stats) = timed(&mut k2_t, || {
            let producer = VmProducer { prog: &prog, sim: &sim, inputs: &w.inputs };
            let (analysis, _, stats) = analyze_streaming_produce(&k2_config, producer)
                .expect("workload runs streaming at K=2");
            (analysis, stats)
        });
        let auto = timed(&mut auto_t, || {
            let producer = VmProducer { prog: &prog, sim: &sim, inputs: &w.inputs };
            let (analysis, _, _) = analyze_streaming_produce(&auto_config, producer)
                .expect("workload runs streaming at auto-K");
            analysis
        });
        last = Some((hashed, dense, k2, auto, stats));
    }
    let (hashed, dense, k2, auto, stats) = last.expect("iters >= 1");

    assert_eq!(dense, hashed, "dense lookup must be byte-identical to hash");
    assert_eq!(k2, hashed, "streaming K=2 must be byte-identical to sequential");
    assert_eq!(auto, hashed, "streaming auto-K must be byte-identical to sequential");
    assert!(
        stats.peak_buffered_records <= stats.max_buffered_records,
        "peak buffered records {} over the configured ceiling {}",
        stats.peak_buffered_records,
        stats.max_buffered_records
    );
    let _: &Analysis = &hashed;

    let overhead = |d: Duration| d.as_secs_f64() / bare.as_secs_f64();
    let rows = [
        Row { mode: "seq-hash", seconds: hash_t, overhead: overhead(hash_t) },
        Row { mode: "sequential", seconds: dense_t, overhead: overhead(dense_t) },
        Row { mode: "stream-k2", seconds: k2_t, overhead: overhead(k2_t) },
        Row { mode: "stream-auto", seconds: auto_t, overhead: overhead(auto_t) },
    ];
    let table = foray_bench::render_table(
        &["mode", "records", "time", "vs bare"],
        &std::iter::once(vec![
            "bare".to_owned(),
            foray_bench::human(records),
            format!("{:.1} ms", bare.as_secs_f64() * 1e3),
            "1.00x".to_owned(),
        ])
        .chain(rows.iter().map(|r| {
            vec![
                r.mode.to_owned(),
                foray_bench::human(records),
                format!("{:.1} ms", r.seconds.as_secs_f64() * 1e3),
                format!("{:.2}x", r.overhead),
            ]
        }))
        .collect::<Vec<_>>(),
    );
    println!("{table}");

    // Corpus sweep: streaming K=2 vs auto-K on every workload. Fewer
    // rounds than the hot-path section — the gate compares corpus totals,
    // which average out per-workload jitter.
    let corpus_iters = (args.iters / 4).max(3);
    let mut corpus: Vec<CorpusRow> = Vec::new();
    for cw in foray_workloads::all(params) {
        let cprog = cw.frontend().expect("corpus workload compiles");
        let (mut ck2, mut cauto) = (Duration::MAX, Duration::MAX);
        let mut crecords = 0u64;
        for _ in 0..corpus_iters {
            let k2r = timed(&mut ck2, || {
                let producer = VmProducer { prog: &cprog, sim: &sim, inputs: &cw.inputs };
                let (analysis, outcome, _) = analyze_streaming_produce(&k2_config, producer)
                    .expect("corpus workload runs at K=2");
                crecords = outcome.accesses + outcome.checkpoints;
                analysis
            });
            let autor = timed(&mut cauto, || {
                let producer = VmProducer { prog: &cprog, sim: &sim, inputs: &cw.inputs };
                let (analysis, _, _) = analyze_streaming_produce(&auto_config, producer)
                    .expect("corpus workload runs at auto-K");
                analysis
            });
            assert_eq!(autor, k2r, "{}: auto-K must match K=2 byte-for-byte", cw.name);
        }
        corpus.push(CorpusRow { workload: cw.name, records: crecords, k2: ck2, auto: cauto });
    }
    let k2_total: f64 = corpus.iter().map(|c| c.k2.as_secs_f64()).sum();
    let auto_total: f64 = corpus.iter().map(|c| c.auto.as_secs_f64()).sum();
    let autok_ratio = auto_total / k2_total;
    let corpus_table = foray_bench::render_table(
        &["workload", "records", "K=2", "auto-K", "auto/K=2"],
        &corpus
            .iter()
            .map(|c| {
                vec![
                    c.workload.to_owned(),
                    foray_bench::human(c.records),
                    format!("{:.1} ms", c.k2.as_secs_f64() * 1e3),
                    format!("{:.1} ms", c.auto.as_secs_f64() * 1e3),
                    format!("{:.2}x", c.auto.as_secs_f64() / c.k2.as_secs_f64()),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("{corpus_table}");
    println!(
        "corpus totals: K=2 {:.1} ms, auto-K {:.1} ms ({autok_ratio:.2}x)",
        k2_total * 1e3,
        auto_total * 1e3
    );

    if let Some(path) = &args.json {
        let report = json_report(&args, auto_shards, records, bare, &rows, &corpus, autok_ratio);
        if let Err(e) = std::fs::write(path, report) {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        }
        println!("wrote {path} (foray-analyzer-bench/v1)");
    }
    let mut failed = false;
    if let Some(max) = args.check_overhead {
        let got = rows[2].overhead;
        if got > max {
            eprintln!("FAIL: streaming K=2 overhead {got:.2}x is above the {max:.2}x gate");
            failed = true;
        } else {
            println!("check passed: streaming K=2 {got:.2}x <= {max:.2}x");
        }
    }
    if args.check_autok {
        if autok_ratio > AUTOK_NOISE_MARGIN {
            eprintln!(
                "FAIL: corpus auto-K is {autok_ratio:.2}x of K=2 \
                 (gate: {AUTOK_NOISE_MARGIN:.2}x)"
            );
            failed = true;
        } else {
            println!("check passed: corpus auto-K {autok_ratio:.2}x <= {AUTOK_NOISE_MARGIN:.2}x");
        }
    }
    if failed {
        std::process::exit(3);
    }
}
