//! # foray-bench — experiment harness for the FORAY-GEN reproduction
//!
//! Regenerates every table and figure of the paper's evaluation
//! (Section 5) from the workload suite:
//!
//! * `cargo run -p foray-bench --bin table1` — Table I (benchmark
//!   complexity and loop distribution);
//! * `... --bin table2` — Table II (loops/references converted into FORAY
//!   form, and the share not statically analyzable) plus the paper's 2x
//!   headline;
//! * `... --bin table3` — Table III (memory behaviour of the FORAY
//!   models);
//! * `... --bin figures` — Figs. 2, 4, 7, 9 as runnable demonstrations;
//! * `... --bin sensitivity` — the paper's future-work experiment (model
//!   stability across input sets);
//! * `... --bin filter_sweep` — ablation of the Step 4 thresholds;
//! * `... --bin dse` — the Phase II design-space exploration over the
//!   whole corpus, with Pareto-front reporting (`--json PATH` for the
//!   machine-readable artifact).
//!
//! Criterion micro-benchmarks live under `benches/` (analyzer throughput
//! and linearity, nest-depth scaling, lookup-strategy ablation, online vs
//! offline analysis, SPM design-space exploration).

#![warn(missing_docs)]

use foray::{BatchJob, CaptureComparison, ForayGen, ForayGenOutput, LoopBreakdown, MemoryBehavior};
use foray_workloads::{all, Params, Workload};
use std::collections::HashSet;

/// One workload's complete experiment bundle.
pub struct BenchRun {
    /// The workload itself.
    pub workload: Workload,
    /// The checked (uninstrumented) program, for static analysis.
    pub program: minic::Program,
    /// Full FORAY-GEN output.
    pub output: ForayGenOutput,
    /// Static detector results.
    pub static_analysis: foray_baseline::StaticAnalysis,
}

impl BenchRun {
    /// Runs one workload end to end.
    ///
    /// # Panics
    ///
    /// Panics if the workload fails to compile or run — that is a bug in
    /// the workload crate, not an experiment outcome.
    pub fn execute(workload: Workload) -> BenchRun {
        let mut program = minic::parse(&workload.source).expect("workload parses");
        minic::check(&mut program).expect("workload checks");
        let static_analysis = foray_baseline::analyze_program(&program);
        let output = workload.run().expect("workload runs");
        BenchRun { workload, program, output, static_analysis }
    }

    /// Table I row.
    pub fn table1(&self) -> LoopBreakdown {
        LoopBreakdown::compute(&self.workload.source, &self.program, &self.output.analysis)
    }

    /// Table II row.
    pub fn table2(&self) -> CaptureComparison {
        let loops: HashSet<minic::LoopId> =
            self.static_analysis.canonical_loops.iter().copied().collect();
        CaptureComparison::compute(
            &self.output.model,
            &loops,
            &self.static_analysis.affine_instrs(),
        )
    }

    /// Table III row.
    pub fn table3(&self) -> MemoryBehavior {
        MemoryBehavior::compute(&self.output.analysis, &self.output.model)
    }
}

/// Runs the whole suite at a scale, fanning the workloads across the
/// shared batch thread pool (auto-sized worker count).
pub fn run_suite(params: Params) -> Vec<BenchRun> {
    run_suite_with(params, 0)
}

/// [`run_suite`] with an explicit worker count (`0` = auto-detect; see
/// [`foray::resolve_shards`]). Results are in workload order and identical
/// to sequential [`BenchRun::execute`] runs regardless of scheduling.
pub fn run_suite_with(params: Params, workers: usize) -> Vec<BenchRun> {
    let workloads = all(params);
    let jobs: Vec<BatchJob> = workloads.iter().map(|w| w.batch_job(ForayGen::new())).collect();
    let outputs = foray::analyze_batch(&jobs, workers);
    workloads
        .into_iter()
        .zip(outputs)
        .map(|(workload, output)| {
            let output = output.expect("workload runs");
            let mut program = minic::parse(&workload.source).expect("workload parses");
            minic::check(&mut program).expect("workload checks");
            let static_analysis = foray_baseline::analyze_program(&program);
            BenchRun { workload, program, output, static_analysis }
        })
        .collect()
}

/// The corpus design space: every workload at `params`, every energy
/// preset, and a standard SPM capacity grid — what the `dse` bin, the
/// `spm_dse` bench, and CI's `dse-smoke` job explore.
pub fn dse_space(params: Params) -> foray_spm::SpmDesignSpace {
    foray_spm::SpmDesignSpace::new()
        .capacities(&[256, 512, 1024, 2048, 4096, 8192])
        .preset_models()
        .workloads(all(params).iter().map(|w| w.batch_job(ForayGen::new())))
}

/// Renders an aligned text table (the suite-wide style; see
/// [`foray::report::render_table`]).
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    foray::report::render_table(headers, rows)
}

/// Formats a percentage like the paper's tables (integer percent).
pub fn pct(part: u64, whole: u64) -> String {
    if whole == 0 {
        "0%".to_owned()
    } else {
        format!("{:.0}%", 100.0 * part as f64 / whole as f64)
    }
}

/// Human-friendly access counts (`8.3M` style, as in Table III).
pub fn human(n: u64) -> String {
    if n >= 10_000_000 {
        format!("{:.0}M", n as f64 / 1e6)
    } else if n >= 1_000_000 {
        format!("{:.1}M", n as f64 / 1e6)
    } else if n >= 10_000 {
        format!("{:.0}k", n as f64 / 1e3)
    } else {
        n.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_alignment() {
        let t = render_table(
            &["name", "n"],
            &[vec!["a".into(), "1".into()], vec!["long".into(), "100".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[3].ends_with("100"));
    }

    #[test]
    fn pct_and_human() {
        assert_eq!(pct(1, 4), "25%");
        assert_eq!(pct(0, 0), "0%");
        assert_eq!(human(8_300_000), "8.3M");
        assert_eq!(human(123_456), "123k");
        assert_eq!(human(42), "42");
        assert_eq!(human(43_000_000), "43M");
    }

    #[test]
    fn batched_suite_matches_direct_execution() {
        // The batch pool must not change any experiment number.
        let batched = run_suite_with(Params::default(), 3);
        assert_eq!(batched.len(), 7);
        let direct =
            BenchRun::execute(foray_workloads::by_name("gsmc", Params::default()).unwrap());
        let from_batch = batched.iter().find(|r| r.workload.name == "gsmc").unwrap();
        assert_eq!(from_batch.output.analysis, direct.output.analysis);
        assert_eq!(from_batch.output.code, direct.output.code);
        let t3a = from_batch.table3();
        let t3b = direct.table3();
        assert_eq!(t3a.total_accesses, t3b.total_accesses);
        assert_eq!(t3a.model_footprint, t3b.model_footprint);
    }

    #[test]
    fn bench_run_executes_one_workload() {
        let w = foray_workloads::by_name("adpcmc", Params::default()).unwrap();
        let run = BenchRun::execute(w);
        let t1 = run.table1();
        assert_eq!(t1.total_loops, 2);
        let t2 = run.table2();
        assert_eq!(t2.model_refs, 1);
        assert_eq!(t2.static_refs, 0);
        let t3 = run.table3();
        assert!(t3.total_accesses > 0);
    }
}
