//! `adpcmc` — IMA ADPCM encoder (the paper's `adpcm` analogue).
//!
//! The paper's most extreme data point: two loops, a **single** reference
//! in the FORAY model, and 100% of it not in FORAY form in the source. The
//! encoder is one `while` loop over samples whose only regular reference is
//! the output-code pointer walk; the quantizer state tables (`steptab`,
//! `indextab`) are indexed by data-dependent state, and the small
//! delta table initialized by the lone `for` loop is filtered by `Nloc`.
//!
//! Deviation from MiBench: codes are emitted one byte each instead of
//! nibble-packed. Packing advances the output pointer every *second*
//! iteration, giving a non-integral per-iteration stride that Algorithm 3
//! (correctly) rejects; byte emission keeps the reference analyzable while
//! preserving the walk itself.

use crate::{Params, Workload};
use std::fmt::Write as _;

/// The standard IMA ADPCM step-size table (89 entries).
pub const IMA_STEP_TABLE: [i64; 89] = [
    7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31, 34, 37, 41, 45, 50, 55, 60, 66,
    73, 80, 88, 97, 107, 118, 130, 143, 157, 173, 190, 209, 230, 253, 279, 307, 337, 371, 408, 449,
    494, 544, 598, 658, 724, 796, 876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066, 2272,
    2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358, 5894, 6484, 7132, 7845, 8630, 9493,
    10442, 11487, 12635, 13899, 15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767,
];

/// The standard IMA index-adjustment table (8 entries, mirrored by sign).
pub const IMA_INDEX_TABLE: [i64; 8] = [-1, -1, -1, -1, 2, 4, 6, 8];

/// Builds the workload. `params.scale` multiplies the sample count
/// (scale 1 → 4096 samples).
pub fn workload(params: Params) -> Workload {
    let n = 4096usize * params.scale as usize;
    let steps = {
        let mut s = String::new();
        for (i, v) in IMA_STEP_TABLE.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let _ = write!(s, "{v}");
        }
        s
    };
    let indexes = {
        let mut s = String::new();
        for (i, v) in IMA_INDEX_TABLE.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let _ = write!(s, "{v}");
        }
        s
    };
    let source = TEMPLATE
        .replace("@N@", &n.to_string())
        .replace("@NO@", &n.to_string())
        .replace("@STEPS@", &steps)
        .replace("@INDEXES@", &indexes);
    Workload {
        name: "adpcmc",
        description: "IMA ADPCM encoder: one while loop, one pointer-walk output reference",
        source,
        inputs: crate::input::audio(0xadbc_0006, n),
    }
}

const TEMPLATE: &str = r#"
int steptab[89] = { @STEPS@ };
int indextab[8] = { @INDEXES@ };
int deltatab[8];
char outbuf[@NO@];

void main() {
    int i; int n; int val; int sign; int diff; int step;
    int valpred; int index; int code; int delta;
    char *outp;
    for (i = 0; i < 8; i++) { deltatab[i] = i * 2 + 1; }
    outp = outbuf;
    valpred = 0;
    index = 0;
    n = 0;
    while (n < @N@) {
        val = input(n);
        step = steptab[index];
        diff = val - valpred;
        if (diff < 0) { sign = 8; diff = 0 - diff; } else { sign = 0; }
        code = 0;
        if (diff >= step) { code = 4; diff -= step; }
        if (diff >= step / 2) { code += 2; diff -= step / 2; }
        if (diff >= step / 4) { code += 1; }
        delta = step * deltatab[code & 7] / 8;
        if (sign > 0) { valpred -= delta; } else { valpred += delta; }
        if (valpred > 32767) { valpred = 32767; }
        if (valpred < -32768) { valpred = 0 - 32768; }
        code += sign;
        index += indextab[code & 7];
        if (index < 0) { index = 0; }
        if (index > 88) { index = 88; }
        *outp++ = code & 15;
        n++;
    }
    print_int(valpred);
    print_int(index);
}
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use foray::report::{loop_kinds, LoopKind};

    #[test]
    fn compiles_and_runs() {
        let out = workload(Params::default()).run().expect("adpcmc runs");
        assert_eq!(out.sim.printed.len(), 2);
    }

    #[test]
    fn exactly_one_model_reference_the_pointer_walk() {
        let out = workload(Params::default()).run().expect("adpcmc runs");
        assert_eq!(out.model.ref_count(), 1, "{}", out.code);
        let r = &out.model.refs[0];
        // Writes one code per sample, byte-strided.
        assert_eq!(r.terms.len(), 1);
        assert_eq!(r.terms[0].coeff, 1);
        assert!(r.writes > 0 && r.reads == 0);
    }

    #[test]
    fn loop_mix_is_one_for_one_while() {
        let w = workload(Params::default());
        let prog = minic::frontend(&w.source).unwrap();
        let kinds = loop_kinds(&prog);
        assert_eq!(kinds.len(), 2);
        assert_eq!(kinds.values().filter(|k| **k == LoopKind::For).count(), 1);
        assert_eq!(kinds.values().filter(|k| **k == LoopKind::While).count(), 1);
    }

    #[test]
    fn tracks_signal_with_bounded_error() {
        // ADPCM is lossy but the predictor must roughly track the signal.
        let w = workload(Params::default());
        let last = *w.inputs.last().unwrap();
        let out = w.run().expect("adpcmc runs");
        let valpred = out.sim.printed[0];
        assert!((valpred - last).abs() < 2048, "valpred {valpred} vs last sample {last}");
    }
}
