//! `lamec` — MP3-encoder-style subband filterbank (the paper's `lame`
//! analogue).
//!
//! Pattern mix modelled on what makes `lame` interesting in the paper:
//! a `do` loop over frames (lame is the only benchmark with a noticeable
//! `do`-loop share), a polyphase filterbank whose input window slides via a
//! pointer offset carried through a function argument, a band-energy helper
//! called from **two** contexts (the Fig. 9 inlining-hint scenario), and a
//! psychoacoustic stage whose band mapping is data-dependent (outside any
//! FORAY model).

use crate::{Params, Workload};

/// Builds the workload. `params.scale` multiplies the frame count
/// (scale 1 → 24 frames of 32 samples).
pub fn workload(params: Params) -> Workload {
    let frames = 24usize * params.scale as usize;
    let ns = frames * 32;
    let source = TEMPLATE
        .replace("@NS@", &ns.to_string())
        .replace("@SBN@", &(frames * 32).to_string())
        .replace("@FRAMES@", &frames.to_string());
    Workload {
        name: "lamec",
        description: "MP3-style polyphase subband filterbank + psychoacoustic model",
        source,
        inputs: crate::input::audio(0x1a3e_0002, ns),
    }
}

const TEMPLATE: &str = r#"
int samples[@NS@];
int win[512];
int z[512];
int sb[@SBN@];
int energy[32];
int bark[64];
int bandsum[32];
int q_out[@SBN@];

void make_window() {
    int i;
    for (i = 0; i < 512; i++) { win[i] = (i * 23) % 97 - 48; }
}

void load() {
    int i;
    for (i = 0; i < @NS@; i++) { samples[i] = input(i); }
}

void filterbank(int frame) {
    int s; int k; int acc; int i;
    int *in;
    in = samples;
    in = in + frame * 32;
    for (i = 511; i >= 32; i--) { z[i] = z[i - 32]; }
    for (i = 0; i < 32; i++) { z[i] = in[i] * win[i] / 64; }
    for (s = 0; s < 32; s++) {
        acc = 0;
        for (k = 0; k < 16; k++) {
            acc += z[s + 32 * k] * win[s + 32 * k] / 256;
        }
        sb[frame * 32 + s] = acc;
    }
}

int band_energy(int off) {
    int b; int e; int tot;
    tot = 0;
    for (b = 0; b < 32; b++) {
        e = sb[off + b];
        energy[b] = e;
        tot += e * e / 16;
    }
    return tot;
}

void psycho() {
    int i;
    for (i = 0; i < 64; i++) { bark[i] = (i * 13 + 3) % 32; }
    for (i = 0; i < 64; i++) { bandsum[bark[i]] += energy[i % 32]; }
}

void main() {
    int frame; int tot; int g;
    make_window();
    load();
    frame = 0;
    do {
        filterbank(frame);
        tot = band_energy(frame * 32);
        if (tot > 0) { psycho(); }
        frame++;
    } while (frame < @FRAMES@);
    g = 0;
    tot = 0;
    while (g < @FRAMES@) {
        tot += band_energy(g * 32);
        g += 2;
    }
    for (int f = 0; f < @FRAMES@; f++) {
        for (int s = 0; s < 32; s++) {
            q_out[f * 32 + s] = sb[f * 32 + s] / (1 + s % 8);
        }
    }
    print_int(tot);
    print_int(q_out[33]);
    print_int(bandsum[5]);
}
"#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compiles_and_runs() {
        let w = workload(Params::default());
        let out = w.run().expect("lamec runs");
        assert_eq!(out.sim.printed.len(), 3);
    }

    #[test]
    fn band_energy_yields_inline_hint() {
        let out = workload(Params::default()).run().expect("lamec runs");
        assert!(
            out.hints.iter().any(|h| h.function == "band_energy" && h.contexts.len() == 2),
            "hints: {:?}",
            out.hints
        );
    }

    #[test]
    fn filterbank_references_are_model_worthy() {
        let out = workload(Params::default()).run().expect("lamec runs");
        // The sliding-window read in[i] spans frame and i — full affine.
        assert!(out.model.ref_count() >= 6, "{}", out.code);
        let full: usize = out.model.refs.iter().filter(|r| !r.is_partial()).count();
        assert!(full >= 5, "{}", out.code);
    }
}
