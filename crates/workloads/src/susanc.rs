//! `susanc` — SUSAN-style image smoothing (the paper's `susan` analogue).
//!
//! The bulk of the traffic is the 5×5 stencil read, which walks the image
//! through a row pointer (`row[c + dc]`) — statically invisible,
//! dynamically a full affine reference across four loop levels. That is
//! what gives `susan` the paper's profile: a large share of *accesses*
//! captured by the FORAY model while roughly half the model's references
//! are not in FORAY form in the source. The brightness-difference LUT
//! lookup is data-dependent and stays outside the model, and the border
//! pass uses `while`-driven pointer walks.

use crate::{Params, Workload};

/// Builds the workload. `params.scale` multiplies the image size
/// (scale 1 → 24×20).
pub fn workload(params: Params) -> Workload {
    let w = 24usize * params.scale as usize;
    let h = 20usize * params.scale as usize;
    let n = w * h;
    let source = TEMPLATE
        .replace("@N@", &n.to_string())
        .replace("@W@", &w.to_string())
        .replace("@H@", &h.to_string())
        .replace("@WI@", &(w - 4).to_string())
        .replace("@HI@", &(h - 4).to_string())
        .replace("@LASTROW@", &((h - 1) * w).to_string());
    Workload {
        name: "susanc",
        description: "SUSAN-style 5x5 LUT-weighted image smoothing",
        source,
        inputs: crate::input::image(0x5a5a_0003, w, h),
    }
}

const TEMPLATE: &str = r#"
int img[@N@];
int out[@N@];
int lut[512];

void make_lut() {
    int i;
    for (i = 0; i < 512; i++) {
        lut[i] = (511 - abs(i - 256)) * 100 / 512;
    }
}

void load() {
    int i;
    for (i = 0; i < @N@; i++) { img[i] = input(i); }
}

void smooth() {
    int r; int c; int dr; int dc; int acc; int wsum; int center; int p; int wgt;
    int *row;
    for (r = 0; r < @HI@; r++) {
        for (c = 0; c < @WI@; c++) {
            center = img[(r + 2) * @W@ + c + 2];
            acc = 0;
            wsum = 0;
            for (dr = 0; dr < 5; dr++) {
                row = img;
                row = row + (r + dr) * @W@;
                for (dc = 0; dc < 5; dc++) {
                    p = row[c + dc];
                    wgt = lut[p - center + 256];
                    acc += wgt * p;
                    wsum += wgt;
                }
            }
            out[(r + 2) * @W@ + c + 2] = acc / (wsum + 1);
        }
    }
}

void borders() {
    int i;
    int *t; int *b;
    t = out;
    b = out;
    b = b + @LASTROW@;
    i = 0;
    while (i < @W@) {
        *t++ = img[i];
        *b++ = img[@LASTROW@ + i];
        i++;
    }
}

void main() {
    make_lut();
    load();
    smooth();
    borders();
    print_int(out[@W@ * 3 + 3]);
    print_int(out[0]);
}
"#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compiles_and_runs() {
        let out = workload(Params::default()).run().expect("susanc runs");
        assert_eq!(out.sim.printed.len(), 2);
    }

    #[test]
    fn stencil_dominates_model_coverage() {
        let out = workload(Params::default()).run().expect("susanc runs");
        // The paper reports susan with the highest share of accesses
        // captured by the model (66%); our stencil read should similarly
        // dominate.
        let covered = out.model.covered_accesses() as f64 / out.sim.accesses as f64;
        assert!(covered > 0.4, "covered fraction {covered:.2}\n{}", out.code);
        // And the stencil itself is a deep full-affine pointer reference.
        assert!(out.model.refs.iter().any(|r| !r.is_partial() && r.nest >= 4));
    }

    #[test]
    fn border_walks_are_recovered() {
        let out = workload(Params::default()).run().expect("susanc runs");
        // Two pointer walks + two strided reads inside the while loop.
        let while_refs = out
            .model
            .refs
            .iter()
            .filter(|r| r.nest == 1 && r.execs == out.model.loops[&r.node_path[0]].trip)
            .count();
        assert!(while_refs >= 2, "{}", out.code);
    }
}
