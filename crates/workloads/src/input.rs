//! Deterministic input-data generation for the workloads.
//!
//! Programs pull data through the simulator's `input(i)` builtin; these
//! helpers synthesize the backing vectors. Everything is seeded xorshift —
//! repeated runs (and CI) see identical traces.

/// Deterministic 64-bit xorshift generator.
#[derive(Debug, Clone)]
pub struct XorShift {
    state: u64,
}

impl XorShift {
    /// Creates a generator from a non-zero seed (zero is mapped to 1).
    pub fn new(seed: u64) -> Self {
        XorShift { state: if seed == 0 { 1 } else { seed } }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x
    }

    /// Uniform value in `0..bound` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// `n` pseudo-random samples in `0..bound`.
pub fn uniform(seed: u64, n: usize, bound: u64) -> Vec<i64> {
    let mut rng = XorShift::new(seed);
    (0..n).map(|_| rng.below(bound) as i64).collect()
}

/// A smooth "image-like" signal: base gradient plus texture noise, values
/// in 0..256. Useful for the jpeg/susan workloads.
pub fn image(seed: u64, width: usize, height: usize) -> Vec<i64> {
    let mut rng = XorShift::new(seed);
    let mut out = Vec::with_capacity(width * height);
    for y in 0..height {
        for x in 0..width {
            let gradient = (x * 255 / width.max(1) + y * 255 / height.max(1)) / 2;
            let noise = rng.below(32) as usize;
            out.push(((gradient + noise) % 256) as i64);
        }
    }
    out
}

/// An "audio-like" signal: a few mixed square/triangle harmonics plus
/// noise, values in −2048..2048. Useful for lame/gsm/adpcm.
pub fn audio(seed: u64, n: usize) -> Vec<i64> {
    let mut rng = XorShift::new(seed);
    (0..n)
        .map(|i| {
            let tri = {
                let p = (i % 64) as i64;
                if p < 32 {
                    p * 64
                } else {
                    (64 - p) * 64
                }
            };
            let square = if (i / 96) % 2 == 0 { 512 } else { -512 };
            let noise = rng.below(256) as i64 - 128;
            (tri - 1024 + square + noise).clamp(-2047, 2047)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(uniform(7, 16, 100), uniform(7, 16, 100));
        assert_eq!(audio(9, 64), audio(9, 64));
        assert_eq!(image(3, 8, 8), image(3, 8, 8));
    }

    #[test]
    fn ranges() {
        assert!(uniform(1, 1000, 50).iter().all(|v| (0..50).contains(v)));
        assert!(image(1, 16, 16).iter().all(|v| (0..256).contains(v)));
        assert!(audio(1, 1000).iter().all(|v| (-2048..2048).contains(v)));
    }

    #[test]
    fn zero_seed_is_valid() {
        let mut rng = XorShift::new(0);
        assert_ne!(rng.next_u64(), 0);
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(uniform(1, 32, 1000), uniform(2, 32, 1000));
    }
}
