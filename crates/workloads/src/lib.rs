//! # foray-workloads — MiBench-style benchmarks for the FORAY-GEN
//! reproduction
//!
//! The paper evaluates on six MiBench programs (`jpeg`, `lame`, `susan`,
//! `fft`, `gsm`, `adpcm`). MiBench's C sources cannot be vendored into this
//! workspace, so this crate provides six mini-C programs implementing the
//! same algorithm families with the same *access-pattern character* — the
//! property the evaluation actually depends on (see `DESIGN.md` §2):
//!
//! | Workload | Algorithm | Character |
//! |---|---|---|
//! | [`jpegc`] | blocked DCT + quantization | `while`/`do` block loops, pointer walks, Fig. 1 idioms |
//! | [`lamec`] | polyphase subband filterbank | `do` frame loop, two-context helper (Fig. 9), data-dependent psycho stage |
//! | [`susanc`] | 5×5 LUT-weighted smoothing | row-pointer stencil dominating accesses, `while` borders |
//! | [`fftc`] | fixed-point radix-2 FFT | pure canonical `for` loops; butterflies indexed through ROM schedule |
//! | [`gsmc`] | LPC speech encoder | argument-offset windows, partial affine LTP, small filtered arrays |
//! | [`adpcmc`] | IMA ADPCM coder | one `while` loop, one pointer-walk reference, data-dependent tables |
//!
//! A seventh program extends the corpus beyond the paper's set:
//!
//! | Workload | Algorithm | Character |
//! |---|---|---|
//! | [`histoc`] | histogram equalization | indirect `hist[image[i]]` updates — the data-dependent partial-affine probe |
//!
//! # Examples
//!
//! ```no_run
//! # fn main() -> Result<(), foray::PipelineError> {
//! for w in foray_workloads::all(foray_workloads::Params::default()) {
//!     let out = w.run()?;
//!     println!("{}: {} refs in FORAY model", w.name, out.model.ref_count());
//! }
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod adpcmc;
pub mod fftc;
pub mod gsmc;
pub mod histoc;
pub mod input;
pub mod jpegc;
pub mod lamec;
pub mod susanc;

/// Workload sizing knob. `scale = 1` keeps every program small enough for
/// debug-mode test runs; benches use larger scales.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Params {
    /// Linear size multiplier (see each workload's docs for what it
    /// scales).
    pub scale: u32,
}

impl Default for Params {
    fn default() -> Self {
        Params { scale: 1 }
    }
}

/// A ready-to-profile benchmark program.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Short identifier (`jpegc`, `lamec`, ...).
    pub name: &'static str,
    /// One-line description.
    pub description: &'static str,
    /// mini-C source text.
    pub source: String,
    /// Data served to the program's `input(i)` builtin.
    pub inputs: Vec<i64>,
}

impl Workload {
    /// Runs the full FORAY-GEN pipeline on this workload with paper-default
    /// filter thresholds.
    ///
    /// # Errors
    ///
    /// Propagates [`foray::PipelineError`] (a workload that fails here is a
    /// bug in this crate).
    pub fn run(&self) -> Result<foray::ForayGenOutput, foray::PipelineError> {
        self.run_with(foray::ForayGen::new())
    }

    /// Runs with a caller-configured pipeline (custom filter thresholds,
    /// simulator settings, ...). The workload's inputs are installed on top.
    ///
    /// # Errors
    ///
    /// Propagates [`foray::PipelineError`].
    pub fn run_with(
        &self,
        pipeline: foray::ForayGen,
    ) -> Result<foray::ForayGenOutput, foray::PipelineError> {
        pipeline.inputs(self.inputs.clone()).run_source(&self.source)
    }

    /// Parses, checks, and instruments the source.
    ///
    /// # Errors
    ///
    /// Propagates [`minic::Error`].
    pub fn frontend(&self) -> Result<minic::Program, minic::Error> {
        minic::frontend(&self.source)
    }

    /// Packages the workload as a [`foray::BatchJob`] for
    /// [`foray::analyze_batch`], installing this workload's inputs on top
    /// of the given pipeline configuration.
    pub fn batch_job(&self, pipeline: foray::ForayGen) -> foray::BatchJob {
        foray::BatchJob::new(self.name, self.source.clone())
            .pipeline(pipeline.inputs(self.inputs.clone()))
    }
}

/// All workloads at the given size: the six MiBench analogues plus the
/// data-dependent irregular probe (`histoc`).
pub fn all(params: Params) -> Vec<Workload> {
    vec![
        jpegc::workload(params),
        lamec::workload(params),
        susanc::workload(params),
        fftc::workload(params),
        gsmc::workload(params),
        adpcmc::workload(params),
        histoc::workload(params),
    ]
}

/// Looks a workload up by name.
pub fn by_name(name: &str, params: Params) -> Option<Workload> {
    all(params).into_iter().find(|w| w.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete_and_named_consistently() {
        let ws = all(Params::default());
        assert_eq!(ws.len(), 7);
        let names: Vec<&str> = ws.iter().map(|w| w.name).collect();
        assert_eq!(names, vec!["jpegc", "lamec", "susanc", "fftc", "gsmc", "adpcmc", "histoc"]);
        for n in names {
            assert!(by_name(n, Params::default()).is_some());
        }
        assert!(by_name("nope", Params::default()).is_none());
    }

    #[test]
    fn all_workloads_pass_the_frontend() {
        for w in all(Params::default()) {
            w.frontend().unwrap_or_else(|e| panic!("{} does not compile: {e}", w.name));
        }
    }

    #[test]
    fn sources_are_nontrivial() {
        for w in all(Params::default()) {
            let counts = minic::count_lines(&w.source);
            assert!(counts.code >= 30, "{} is suspiciously small", w.name);
            assert!(!w.inputs.is_empty(), "{} has no input data", w.name);
        }
    }
}
