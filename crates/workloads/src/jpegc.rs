//! `jpegc` — JPEG-style image compressor (the paper's `jpeg` analogue).
//!
//! Reproduces the benchmark's characteristic access-pattern mix, including
//! both excerpts of the paper's Fig. 1 verbatim in spirit:
//!
//! * the component/coefficient initialization `*last_bitpos_ptr++ = -1`;
//! * the row-pointer indexing `result[currow++] = workspace` inside a
//!   `while`/`for` combination;
//! * blocked 8×8 DCT with the block base address flowing through a function
//!   argument and a pointer (`p[W*v + u]`) — invisible statically,
//!   recovered as a *full* affine reference dynamically because the block
//!   coordinates are themselves loop iterators (`while`/`do` loops);
//! * quantization through a zigzag permutation (`coef[zigzag[i]]`) and a
//!   histogram (`hist[...]`) — genuinely data-dependent, outside any FORAY
//!   model;
//! * canonical table/loop code that even the static baseline sees.

use crate::{Params, Workload};

/// Builds the workload. `params.scale` multiplies the image size
/// (scale 1 → 32×24, scale 2 → 64×48, ...).
pub fn workload(params: Params) -> Workload {
    let bw = 4usize * params.scale as usize; // blocks across
    let bh = 3usize * params.scale as usize; // blocks down
    let (w, h) = (8 * bw, 8 * bh);
    let n = w * h;
    let rows_per_chunk = 4;
    assert_eq!(h % rows_per_chunk, 0, "row chunking requires h % 4 == 0");

    let source = TEMPLATE
        .replace("@N@", &n.to_string())
        .replace("@W@", &w.to_string())
        .replace("@H@", &h.to_string())
        .replace("@BW@", &bw.to_string())
        .replace("@BH@", &bh.to_string())
        .replace("@BITS@", &(3 * 64).to_string())
        .replace("@RPC@", &rows_per_chunk.to_string());

    Workload {
        name: "jpegc",
        description: "JPEG-style blocked DCT + quantization image compressor",
        source,
        inputs: crate::input::image(0x17e6_0001, w, h),
    }
}

const TEMPLATE: &str = r#"
int image[@N@];
int outcoef[@N@];
int rowdc[@H@];
int coef[64];
int tmpb[64];
int qtab[64];
int costab[64];
int zigzag[64];
int bits[@BITS@];
int hist[256];
int *last_bitpos_ptr;
int *rowptr[@H@];
int currow;

void make_tables() {
    int i;
    for (i = 0; i < 64; i++) { qtab[i] = 1 + i % 8 + i / 8; }
    for (i = 0; i < 64; i++) { costab[i] = (i * 37 + 11) % 128 - 64; }
    for (i = 0; i < 64; i++) { zigzag[i] = (i * 19 + 5) % 64; }
}

void init_bitpos() {
    int ci; int coefi;
    last_bitpos_ptr = bits;
    for (ci = 0; ci < 3; ci++) {
        for (coefi = 0; coefi < 64; coefi++) {
            *last_bitpos_ptr++ = -1;
        }
    }
}

void load_image() {
    int i;
    for (i = 0; i < @N@; i++) { image[i] = input(i); }
}

void index_rows() {
    int i;
    currow = 0;
    while (currow < @H@) {
        for (i = @RPC@; i > 0; i--) {
            rowptr[currow] = &image[currow * @W@];
            currow++;
        }
    }
}

void row_dc() {
    int r; int c; int s;
    int *rp;
    for (r = 0; r < @H@; r++) {
        rp = rowptr[r];
        s = 0;
        for (c = 0; c < @W@; c++) { s += rp[c]; }
        rowdc[r] = s / @W@;
    }
}

int dct_block(int base) {
    int u; int v; int k; int s;
    int *p;
    p = image;
    p = p + base;
    for (v = 0; v < 8; v++) {
        for (u = 0; u < 8; u++) {
            coef[8 * v + u] = p[@W@ * v + u];
        }
    }
    for (v = 0; v < 8; v++) {
        for (u = 0; u < 8; u++) {
            s = 0;
            for (k = 0; k < 8; k++) { s += coef[8 * v + k] * costab[8 * u + k]; }
            tmpb[8 * v + u] = s / 64;
        }
    }
    for (u = 0; u < 8; u++) {
        for (v = 0; v < 8; v++) {
            s = 0;
            for (k = 0; k < 8; k++) { s += tmpb[8 * k + u] * costab[8 * v + k]; }
            coef[8 * v + u] = s / 64;
        }
    }
    return coef[0];
}

void quantize_block(int obase) {
    int i; int q; int z;
    int *op;
    op = outcoef;
    op = op + obase;
    for (i = 0; i < 64; i++) {
        z = zigzag[i];
        q = coef[z] / qtab[i];
        *op++ = q;
        hist[abs(q) % 256] += 1;
    }
}

void main() {
    int bx; int by; int base;
    make_tables();
    init_bitpos();
    load_image();
    index_rows();
    row_dc();
    by = 0;
    while (by < @BH@) {
        bx = 0;
        do {
            base = by * 8 * @W@ + bx * 8;
            dct_block(base);
            quantize_block(by * @BW@ * 64 + bx * 64);
            bx++;
        } while (bx < @BW@);
        by++;
    }
    print_int(outcoef[0]);
    print_int(rowdc[1]);
    print_int(hist[0]);
}
"#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compiles_and_runs() {
        let w = workload(Params::default());
        let out = w.run().expect("jpegc runs");
        assert_eq!(out.sim.printed.len(), 3);
        assert!(out.sim.accesses > 10_000);
    }

    #[test]
    fn model_mixes_static_and_dynamic_only_references() {
        let w = workload(Params::default());
        let out = w.run().expect("jpegc runs");
        assert!(out.model.ref_count() >= 8, "model: {}", out.code);
        // The pointer-based block load p[W*v+u] must be recovered as a
        // full affine reference spanning the while/do block loops.
        let has_deep_full =
            out.model.refs.iter().any(|r| !r.is_partial() && r.nest >= 4 && r.terms.len() >= 3);
        assert!(has_deep_full, "expected a deep full-affine pointer reference\n{}", out.code);
    }

    #[test]
    fn scales_with_params() {
        let small = workload(Params::default());
        let big = workload(Params { scale: 2 });
        assert!(big.inputs.len() > small.inputs.len());
    }
}
