//! `gsmc` — GSM-style LPC speech encoder (the paper's `gsm` analogue).
//!
//! The paper reports `gsm` with the *largest* share of model references not
//! in FORAY form (74%): most of its hot loops walk the signal through
//! frame offsets carried in function arguments and pointers. This analogue
//! mirrors that: offset compensation via a `while`-driven pointer walk,
//! autocorrelation and long-term-prediction correlation over
//! argument-offset windows (statically invisible, dynamically affine), a
//! long-term-prediction residual over a data-dependent best lag (a partial
//! affine expression), a windowing helper whose two call sites *within one
//! loop body* interleave (collapsing the signal read's window to zero,
//! exactly per Step 6 of Algorithm 3), and small coefficient arrays
//! (`acf`, `refl`, `lar`) that Step 4's `Nloc` filter drops — the paper's
//! rationale for that filter.

use crate::{Params, Workload};

/// Builds the workload. `params.scale` multiplies the frame count
/// (scale 1 → 24 frames of 160 samples).
pub fn workload(params: Params) -> Workload {
    let frames = 24usize * params.scale as usize;
    let ns = frames * 160;
    let source = TEMPLATE.replace("@NS@", &ns.to_string()).replace("@FRAMES@", &frames.to_string());
    Workload {
        name: "gsmc",
        description: "GSM-style LPC encoder: autocorrelation, Schur recursion, LTP search",
        source,
        inputs: crate::input::audio(0x65a1_0005, ns),
    }
}

const TEMPLATE: &str = r#"
int pcm[@NS@];
int acf[9];
int refl[8];
int lar[8];
int ltp_out[@FRAMES@];
int weights[40];
int win_g[40];

void make_win() {
    int i;
    for (i = 0; i < 40; i++) { win_g[i] = (i * 7) % 32 + 16; }
}

void load() {
    int i;
    for (i = 0; i < @NS@; i++) { pcm[i] = input(i); }
}

void preprocess(int off) {
    int i; int so; int prev;
    int *p;
    p = pcm;
    p = p + off;
    prev = 0;
    i = 0;
    while (i < 160) {
        so = *p;
        *p++ = so - prev / 2;
        prev = so;
        i++;
    }
}

void autocorr(int off) {
    int k; int i; int sum;
    for (k = 0; k < 9; k++) {
        sum = 0;
        for (i = 0; i < 151; i++) {
            sum += pcm[off + i] * pcm[off + i + k] / 64;
        }
        acf[k] = sum / 16;
    }
}

void reflect() {
    int n; int num; int den;
    n = 0;
    while (n < 8) {
        den = abs(acf[0]) + 1;
        num = acf[n + 1];
        refl[n] = num * 256 / den;
        lar[n] = refl[n] / 2;
        n++;
    }
}

int ltp(int off) {
    int lag; int best; int bestlag; int corr; int j;
    best = 0 - 1000000000;
    bestlag = 40;
    lag = 40;
    while (lag < 120) {
        corr = 0;
        for (j = 0; j < 40; j++) {
            corr += pcm[off + 120 + j] / 8 * (pcm[off + 120 + j - lag] / 8);
        }
        if (corr > best) { best = corr; bestlag = lag; }
        lag++;
    }
    return bestlag;
}

int ltp_residual(int off, int bestlag) {
    int j; int r;
    r = 0;
    for (j = 0; j < 40; j++) {
        r += abs(pcm[off + 120 + j] - pcm[off + 120 + j - bestlag]);
    }
    return r;
}

void apply_window(int off) {
    int i;
    for (i = 0; i < 40; i++) {
        weights[i] = pcm[off + i] * win_g[i] / 256;
    }
}

void main() {
    int f; int off; int bl;
    make_win();
    load();
    for (f = 0; f < @FRAMES@; f++) {
        off = f * 160;
        preprocess(off);
        autocorr(off);
        reflect();
        bl = ltp(off);
        ltp_out[f] = bl + ltp_residual(off, bl) / 1024;
        apply_window(off);
        apply_window(off + 80);
    }
    print_int(ltp_out[0]);
    print_int(lar[3]);
    print_int(weights[5]);
}
"#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compiles_and_runs() {
        let out = workload(Params::default()).run().expect("gsmc runs");
        assert_eq!(out.sim.printed.len(), 3);
    }

    #[test]
    fn small_coefficient_arrays_are_filtered() {
        let out = workload(Params::default()).run().expect("gsmc runs");
        // acf/refl/lar have < Nloc locations: none may appear in the model.
        for r in &out.model.refs {
            assert!(r.footprint >= 10, "leaked small-array ref: {r:?}");
        }
    }

    #[test]
    fn ltp_residual_is_partial_affine() {
        let out = workload(Params::default()).run().expect("gsmc runs");
        // pcm[off + 120 + j - bestlag]: bestlag changes per frame in a
        // data-dependent way, so the expression is partial over j only.
        assert!(
            out.model.refs.iter().any(|r| r.is_partial() && r.window == 1),
            "expected at least one partial reference\n{}",
            out.code
        );
    }

    #[test]
    fn majority_of_model_refs_are_pointer_or_offset_based() {
        let out = workload(Params::default()).run().expect("gsmc runs");
        assert!(out.model.ref_count() >= 6, "{}", out.code);
    }
}
