//! `histoc` — indirect-indexed histogram equalization (the corpus's
//! data-dependent irregular probe).
//!
//! The first six workloads mirror the paper's MiBench set; `histoc` exists
//! to stress the *partial affine* machinery specifically. Its pipeline is
//! the classic image histogram-equalization shape:
//!
//! 1. an affine scan fills `image[]` from `input()` (fully analyzable);
//! 2. `hist[image[i]]++` — the address is the *data*, so the reference is
//!    unpredictable over the scan iterator and can only be captured as a
//!    partial-affine window, while the `image[i]` read feeding it stays
//!    fully affine;
//! 3. a fixed 256-iteration prefix-sum turns `hist` into a CDF (affine,
//!    and scale-invariant — the bin count never grows);
//! 4. `out[i] = lut[image[i]]` — an affine write fed through a second
//!    data-dependent gather.
//!
//! The result is a program whose *loops* are all canonical `for` loops
//! (statically innocuous) but whose dominant references split cleanly into
//! fully-affine and data-dependent classes — the exact boundary the
//! paper's Fig. 7 discusses.

use crate::{Params, Workload};

/// Builds the workload. `params.scale` multiplies the pixel count
/// (scale 1 → 2048 pixels; the 256-bin histogram never scales).
pub fn workload(params: Params) -> Workload {
    let n = 2048usize * params.scale as usize;
    let source = TEMPLATE.replace("@N@", &n.to_string());
    Workload {
        name: "histoc",
        description: "indirect-indexed histogram equalization over a synthetic image",
        source,
        // A deliberately skewed brightness distribution: equalization has
        // work to do, and the histogram bins are hit unevenly.
        inputs: crate::input::uniform(0x9e37_79b9, n, 180),
    }
}

const TEMPLATE: &str = r#"
int image[@N@];
int out[@N@];
int hist[256];
int lut[256];

void load() {
    int i;
    for (i = 0; i < @N@; i++) {
        image[i] = (input(i) * input(i + 7)) % 256;
    }
}

void build_hist() {
    int i;
    for (i = 0; i < @N@; i++) {
        hist[image[i]]++;
    }
}

void build_lut() {
    int i; int acc;
    acc = 0;
    for (i = 0; i < 256; i++) {
        acc += hist[i];
        lut[i] = (acc * 255) / @N@;
    }
}

void apply() {
    int i;
    for (i = 0; i < @N@; i++) {
        out[i] = lut[image[i]];
    }
}

void main() {
    int i; int check;
    load();
    build_hist();
    build_lut();
    apply();
    check = 0;
    for (i = 0; i < @N@; i++) {
        check += out[i];
    }
    print_int(check);
    print_int(lut[255]);
}
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use foray::report::{loop_kinds, LoopKind};

    #[test]
    fn compiles_and_runs() {
        let out = workload(Params::default()).run().expect("histoc runs");
        assert_eq!(out.sim.printed.len(), 2);
        // The LUT's last entry is the full CDF: 255 by construction.
        assert_eq!(out.sim.printed[1], 255);
    }

    #[test]
    fn all_loops_are_for_loops() {
        let w = workload(Params::default());
        let prog = minic::frontend(&w.source).unwrap();
        assert!(loop_kinds(&prog).values().all(|k| *k == LoopKind::For));
    }

    #[test]
    fn model_splits_affine_from_data_dependent() {
        let out = workload(Params::default()).run().expect("histoc runs");
        // The affine scans (image fill/reads, out writes, lut/hist CDF
        // pass) make it into the model...
        assert!(out.model.ref_count() >= 4, "{}", out.code);
        let full = out.model.refs.iter().filter(|r| !r.is_partial()).count();
        assert!(full >= 4, "expected affine scans in the model: {}", out.code);
        // ...while the histogram/lut gathers are data-dependent: whatever
        // the analyzer keeps of them is partial, never fully affine with
        // a whole-loop window.
        for r in &out.model.refs {
            if r.is_partial() {
                assert!(u64::from(r.window) < out.sim.accesses, "partial window must be bounded");
            }
        }
    }

    #[test]
    fn equalization_actually_equalizes() {
        // Output brightness must span a wider range than the skewed input
        // (inputs are capped at 180 of 255; the LUT stretches to 255).
        let out = workload(Params::default()).run().expect("histoc runs");
        assert!(out.sim.printed[0] > 0);
    }
}
