//! `fftc` — fixed-point radix-2 FFT (the paper's `fft` analogue).
//!
//! Matches the paper's characterization of `fft`: **all loops are `for`
//! loops** and every reference that makes it into the FORAY model is also
//! statically analyzable (Table II reports 0% "not in FORAY form"), while
//! the butterfly network itself indexes through precomputed schedule
//! entries — data-dependent loads/stores that fall outside the model on
//! both sides, which is why the paper's fft shows only ~1% of *accesses*
//! captured (Table III).
//!
//! The twiddle ROM and the per-stage butterfly schedule are generated on
//! the Rust side and injected as initialized globals, like the constant
//! tables a real fixed-point FFT ships with.

use crate::{Params, Workload};
use std::fmt::Write as _;

/// Builds the workload. `params.scale` doubles the transform size per step
/// (scale 1 → N = 256).
pub fn workload(params: Params) -> Workload {
    let n: usize = 128 << params.scale;
    assert!(n.is_power_of_two());
    let stages = n.trailing_zeros() as usize;
    let half = n / 2;

    // Twiddle ROM, Q10 fixed point.
    let mut tw_re = Vec::with_capacity(half);
    let mut tw_im = Vec::with_capacity(half);
    for k in 0..half {
        let angle = -2.0 * std::f64::consts::PI * k as f64 / n as f64;
        tw_re.push((angle.cos() * 1024.0).round() as i64);
        tw_im.push((angle.sin() * 1024.0).round() as i64);
    }

    // Butterfly schedule: per stage, N/2 triples (a, b, twiddle index).
    let mut sched = Vec::with_capacity(3 * half * stages);
    for s in 0..stages {
        let len = 1usize << s;
        let twstep = n / (2 * len);
        let mut block = 0;
        while block < n {
            for j in 0..len {
                sched.push((block + j) as i64);
                sched.push((block + j + len) as i64);
                sched.push((j * twstep) as i64);
            }
            block += 2 * len;
        }
    }

    let source = TEMPLATE
        .replace("@N@", &n.to_string())
        .replace("@N2@", &half.to_string())
        .replace("@STAGES@", &stages.to_string())
        .replace("@SCHEDN@", &sched.len().to_string())
        .replace("@TWRE@", &int_list(&tw_re))
        .replace("@TWIM@", &int_list(&tw_im))
        .replace("@SCHED@", &int_list(&sched));

    Workload {
        name: "fftc",
        description: "fixed-point radix-2 FFT with ROM twiddles and schedule",
        source,
        inputs: crate::input::audio(0xff7_0004, n),
    }
}

fn int_list(values: &[i64]) -> String {
    let mut s = String::with_capacity(values.len() * 6);
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let _ = write!(s, "{v}");
    }
    s
}

const TEMPLATE: &str = r#"
int xr[@N@];
int xi[@N@];
int mag[@N@];
int rev[@N@];
int tw_re[@N2@] = { @TWRE@ };
int tw_im[@N2@] = { @TWIM@ };
int sched[@SCHEDN@] = { @SCHED@ };

void load() {
    int i;
    for (i = 0; i < @N@; i++) {
        xr[i] = input(i);
        xi[i] = 0;
    }
}

void bitrev_build() {
    int i;
    rev[0] = 0;
    for (i = 1; i < @N@; i++) {
        rev[i] = rev[i / 2] / 2 + (i % 2) * @N2@;
    }
}

void permute() {
    int i; int j; int t;
    for (i = 0; i < @N@; i++) {
        j = rev[i];
        if (j > i) {
            t = xr[i]; xr[i] = xr[j]; xr[j] = t;
            t = xi[i]; xi[i] = xi[j]; xi[j] = t;
        }
    }
}

void butterflies() {
    int s; int e; int a; int b; int w;
    int wre; int wim; int tr; int ti; int xra; int xia;
    for (s = 0; s < @STAGES@; s++) {
        for (e = 0; e < @N2@; e++) {
            a = sched[3 * @N2@ * s + 3 * e];
            b = sched[3 * @N2@ * s + 3 * e + 1];
            w = sched[3 * @N2@ * s + 3 * e + 2];
            wre = tw_re[w];
            wim = tw_im[w];
            tr = (xr[b] * wre - xi[b] * wim) / 1024;
            ti = (xr[b] * wim + xi[b] * wre) / 1024;
            xra = xr[a];
            xia = xi[a];
            xr[b] = xra - tr;
            xi[b] = xia - ti;
            xr[a] = xra + tr;
            xi[a] = xia + ti;
        }
    }
}

void magnitude() {
    int i;
    for (i = 0; i < @N@; i++) {
        mag[i] = (xr[i] / 32) * (xr[i] / 32) + (xi[i] / 32) * (xi[i] / 32);
    }
}

void main() {
    load();
    bitrev_build();
    permute();
    butterflies();
    magnitude();
    print_int(xr[0]);
    print_int(mag[0]);
}
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use foray::report::{loop_kinds, LoopKind};

    #[test]
    fn compiles_and_runs() {
        let out = workload(Params::default()).run().expect("fftc runs");
        assert_eq!(out.sim.printed.len(), 2);
    }

    #[test]
    fn dc_bin_is_exact_sum() {
        // The DC path uses twiddle index 0 (re=1024, im=0), so integer
        // arithmetic is exact: xr[0] after the FFT equals the input sum.
        let w = workload(Params::default());
        let expected: i64 = w.inputs.iter().sum();
        let out = w.run().expect("fftc runs");
        assert_eq!(out.sim.printed[0], expected);
    }

    #[test]
    fn all_loops_are_for_loops() {
        let w = workload(Params::default());
        let prog = minic::frontend(&w.source).unwrap();
        let kinds = loop_kinds(&prog);
        assert!(kinds.values().all(|k| *k == LoopKind::For));
    }

    #[test]
    fn model_covers_a_small_access_share() {
        // The butterfly core indexes through the schedule: excluded from
        // the model, so coverage stays low — the paper's fft shape.
        let out = workload(Params::default()).run().expect("fftc runs");
        let covered = out.model.covered_accesses() as f64 / out.sim.accesses as f64;
        assert!(covered < 0.5, "covered fraction {covered:.2}");
        assert!(out.model.ref_count() >= 5, "{}", out.code);
    }
}
