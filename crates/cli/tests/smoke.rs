//! End-to-end smoke test: the paper's Fig. 4 worked example through the
//! real `foray-gen` binary, guarding the whole frontend → simulator →
//! analyzer → codegen path and the recovered affine coefficients.

use std::process::Command;

/// Fig. 4(a): pointer-walking nest whose single reference is the affine
/// function `q + 100 + 1*i_inner + 103*i_outer`.
const FIGURE_4A: &str = "char q[10000];
char *ptr;
void main() {
    int i;
    int t1 = 98;
    ptr = q;
    while (t1 < 100) {
        t1++;
        ptr += 100;
        for (i = 40; i > 37; i--) {
            *ptr++ = i * i % 256;
        }
    }
}";

fn write_fixture(name: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("foray_cli_smoke_{name}.mc"));
    std::fs::write(&path, FIGURE_4A).unwrap();
    path
}

fn foray_gen(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_foray-gen"))
        .args(args)
        .output()
        .expect("foray-gen binary runs")
}

#[test]
fn model_command_recovers_figure4_coefficients() {
    let path = write_fixture("model");
    let out = foray_gen(&["model", path.to_str().unwrap(), "--nexec", "6", "--nloc", "6"]);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8(out.stdout).unwrap();
    // One reference, affine in both loops with coefficients 1 (inner) and
    // 103 (outer) — Fig. 4(d)'s `1*i15 + 103*i12` in our loop numbering.
    assert!(
        stdout.contains("+ 1*i3 + 103*i0]"),
        "model output lost the Fig. 4 affine function:\n{stdout}"
    );
    assert!(stdout.contains("// wr x6"), "expected 6 writes:\n{stdout}");
}

#[test]
fn sharded_model_command_matches_the_sequential_output() {
    // `--sharded --jobs 4` routes the analysis through four shard workers;
    // the recovered model (coefficients 1 and 103) and the exit code must
    // be byte-identical to the sequential path.
    let path = write_fixture("sharded");
    let sequential = foray_gen(&["model", path.to_str().unwrap(), "--nexec", "6", "--nloc", "6"]);
    let sharded = foray_gen(&[
        "model",
        path.to_str().unwrap(),
        "--nexec",
        "6",
        "--nloc",
        "6",
        "--sharded",
        "--jobs",
        "4",
    ]);
    assert!(sequential.status.success());
    assert!(sharded.status.success(), "stderr: {}", String::from_utf8_lossy(&sharded.stderr));
    assert_eq!(sequential.status.code(), sharded.status.code());
    let stdout = String::from_utf8(sharded.stdout.clone()).unwrap();
    assert!(
        stdout.contains("+ 1*i3 + 103*i0]"),
        "sharded analysis lost the Fig. 4 coefficients:\n{stdout}"
    );
    assert_eq!(sequential.stdout, sharded.stdout, "sharded output must be byte-identical");
}

#[test]
fn executable_model_reprofiles_to_the_same_coefficients() {
    // --executable emits the model as a runnable mini-C program; piping it
    // back through `model` must be a fixpoint on the affine function.
    let path = write_fixture("exec");
    let first = foray_gen(&[
        "model",
        path.to_str().unwrap(),
        "--nexec",
        "6",
        "--nloc",
        "6",
        "--executable",
    ]);
    assert!(first.status.success());
    let emitted = std::env::temp_dir().join("foray_cli_smoke_emitted.mc");
    std::fs::write(&emitted, &first.stdout).unwrap();
    let second = foray_gen(&["model", emitted.to_str().unwrap(), "--nexec", "6", "--nloc", "6"]);
    assert!(second.status.success(), "stderr: {}", String::from_utf8_lossy(&second.stderr));
    let stdout = String::from_utf8(second.stdout).unwrap();
    assert!(
        stdout.contains("1*") && stdout.contains("103*"),
        "re-profiled model lost the coefficients:\n{stdout}"
    );
}

#[test]
fn dse_report_is_deterministic_in_the_job_count() {
    // The acceptance bar for the DSE engine: the Pareto report and the JSON
    // artifact must be byte-identical for --jobs 1 and --jobs 4, and the
    // --check invariants (non-empty monotone fronts) must hold.
    let json1 = std::env::temp_dir().join("foray_cli_smoke_dse_jobs1.json");
    let json4 = std::env::temp_dir().join("foray_cli_smoke_dse_jobs4.json");
    let run = |jobs: &str, json: &std::path::Path| {
        foray_gen(&[
            "dse",
            "--workloads",
            "fftc,adpcmc",
            "--capacities",
            "256,1024,4096",
            "--models",
            "small-spm,large-spm",
            "--jobs",
            jobs,
            "--json",
            json.to_str().unwrap(),
            "--check",
        ])
    };
    let seq = run("1", &json1);
    let par = run("4", &json4);
    assert!(seq.status.success(), "stderr: {}", String::from_utf8_lossy(&seq.stderr));
    assert!(par.status.success(), "stderr: {}", String::from_utf8_lossy(&par.stderr));
    assert_eq!(seq.stdout, par.stdout, "job count leaked into the text report");
    let j1 = std::fs::read_to_string(&json1).unwrap();
    let j4 = std::fs::read_to_string(&json4).unwrap();
    assert_eq!(j1, j4, "job count leaked into the JSON artifact");
    assert!(j1.contains("\"schema\": \"foray-dse/v1\""));
    assert!(j1.contains("\"pareto\": true"));
    let stdout = String::from_utf8(seq.stdout).unwrap();
    assert!(stdout.contains("Pareto front"), "missing ranked front:\n{stdout}");
}

#[test]
fn trace_file_pipeline_matches_the_in_ram_model() {
    // The acceptance bar for the file-backed trace pipeline: record a
    // workload trace to disk, re-analyze it from the file (sequentially and
    // sharded), and require byte-identical model output to the in-RAM run.
    let ftrace = std::env::temp_dir().join("foray_cli_smoke_fftc.ftrace");
    let in_ram = foray_gen(&["model", "--workload", "fftc"]);
    assert!(in_ram.status.success(), "stderr: {}", String::from_utf8_lossy(&in_ram.stderr));

    let mut sizes = std::collections::HashMap::new();
    for format in ["v1", "v2"] {
        let record = foray_gen(&[
            "trace",
            "record",
            "--workload",
            "fftc",
            "-o",
            ftrace.to_str().unwrap(),
            "--trace-format",
            format,
        ]);
        assert!(record.status.success(), "stderr: {}", String::from_utf8_lossy(&record.stderr));
        let summary = String::from_utf8(record.stdout).unwrap();
        assert!(
            summary.contains(&std::format!("foray-trace/{format}")),
            "missing record summary:\n{summary}"
        );
        sizes.insert(format, std::fs::metadata(&ftrace).unwrap().len());

        let from_file = foray_gen(&["trace", "analyze", ftrace.to_str().unwrap()]);
        assert!(
            from_file.status.success(),
            "stderr: {}",
            String::from_utf8_lossy(&from_file.stderr)
        );
        assert_eq!(
            in_ram.stdout, from_file.stdout,
            "{format} file-backed model must be byte-identical"
        );

        let sharded =
            foray_gen(&["trace", "analyze", ftrace.to_str().unwrap(), "--sharded", "--jobs", "3"]);
        assert!(sharded.status.success(), "stderr: {}", String::from_utf8_lossy(&sharded.stderr));
        assert_eq!(
            in_ram.stdout, sharded.stdout,
            "{format} sharded file-backed model must be byte-identical"
        );
    }
    assert!(
        sizes["v2"] < sizes["v1"],
        "compressed v2 ({}) must be smaller than v1 ({})",
        sizes["v2"],
        sizes["v1"]
    );
    // The v2 file is still on disk: the checkpoint-index seek path runs
    // end to end through the binary too.
    let seeked = foray_gen(&["trace", "analyze", ftrace.to_str().unwrap(), "--from-loop", "0"]);
    assert!(seeked.status.success(), "stderr: {}", String::from_utf8_lossy(&seeked.stderr));
    std::fs::remove_file(&ftrace).ok();
}

#[test]
fn usage_and_compile_errors_map_to_distinct_exit_codes() {
    let usage = foray_gen(&["model"]);
    assert_eq!(usage.status.code(), Some(1), "missing file is a usage error");

    let broken = std::env::temp_dir().join("foray_cli_smoke_broken.mc");
    std::fs::write(&broken, "void main() {").unwrap();
    let compile = foray_gen(&["model", broken.to_str().unwrap()]);
    assert_eq!(compile.status.code(), Some(2), "parse failure is a compile error");
}
