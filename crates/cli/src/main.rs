//! `foray-gen` — command-line front door to the FORAY-GEN reproduction.
//!
//! ```text
//! foray-gen model <prog.mc> [--nexec N] [--nloc N] [--inputs v,v,...] [--executable]
//!     extract and print the FORAY model (Phase I); --executable emits it
//!     as a runnable mini-C program (re-profiling it is a fixpoint)
//! foray-gen report <prog.mc> [...]
//!     model + static comparison + memory-behaviour breakdown + hints
//! foray-gen trace <prog.mc> [--format text|binary|framed] [-o FILE]
//!     profile and dump the raw trace (Fig. 4(c) format)
//! foray-gen trace record (<prog.mc> | --workload NAME) -o FILE.ftrace
//!         [--trace-format v1|v2]
//!     profile straight into a framed foray-trace file (v2 by default:
//!     delta-compressed blocks with CRC32s and a checkpoint index)
//!     — the trace is streamed block by block, never materialized in
//!     memory
//! foray-gen trace analyze <FILE.ftrace> [--sharded] [--jobs N]
//!         [--from-loop N]
//!     re-analyze a recorded trace file; prints the same FORAY model the
//!     in-RAM `model` command prints, byte for byte. `--from-loop N`
//!     seeks to loop N via the v2 checkpoint index and analyzes the
//!     trace suffix from its first checkpoint on
//! foray-gen annotate <prog.mc>
//!     print the checkpoint-instrumented source (Fig. 4(b))
//! foray-gen spm <prog.mc> [--capacity BYTES]
//!     Phase II: buffer candidates, selection, transformed model
//! foray-gen dse [--workloads all|a,b] [--capacities LIST] [--models LIST]
//!     parallel SPM design-space exploration over the workload corpus,
//!     with Pareto-front reporting (text and --json)
//! foray-gen serve (--socket PATH | --tcp HOST:PORT) [--workers N] ...
//!     forayd: long-running analysis daemon with a content-addressed
//!     result cache, speaking line-delimited JSON
//! foray-gen client (--socket PATH | --tcp HOST:PORT) ACTION [...]
//!     talk to a running daemon: submit / wait / poll / stats / ping /
//!     shutdown
//! ```
//!
//! Exit codes: 0 success, 1 usage error, 2 compile error, 3 runtime error.

use foray::{AnalyzerConfig, Engine, FilterConfig, ForayGen, ForayModel, SampleSpec};
use std::io::Write as _;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Usage(msg)) => {
            eprintln!("error: {msg}\n");
            eprintln!("{USAGE}");
            ExitCode::from(1)
        }
        Err(CliError::Compile(msg)) => {
            eprintln!("compile error: {msg}");
            ExitCode::from(2)
        }
        Err(CliError::Runtime(msg)) => {
            eprintln!("runtime error: {msg}");
            ExitCode::from(3)
        }
        Err(CliError::Io(e)) => {
            eprintln!("i/o error: {e}");
            ExitCode::from(3)
        }
    }
}

const USAGE: &str = "usage:
  foray-gen model    <prog.mc> [--nexec N] [--nloc N] [--inputs v,v,..] [--executable]
  foray-gen report   <prog.mc> [--nexec N] [--nloc N] [--inputs v,v,..]
  foray-gen trace    <prog.mc> [--format text|binary|framed] [-o FILE] [--inputs v,v,..]
  foray-gen trace record  (<prog.mc> | --workload NAME [--scale N]) -o FILE.ftrace
                          [--trace-format v1|v2]
  foray-gen trace analyze <FILE.ftrace> [--nexec N] [--nloc N] [--sharded] [--jobs N]
                          [--from-loop N]
  foray-gen annotate <prog.mc>
  foray-gen spm      <prog.mc> [--capacity BYTES] [--nexec N] [--nloc N] [--inputs v,v,..]
  foray-gen dse      [--workloads all|a,b,..] [--capacities n,n,..] [--models m,m,..]
                     [--jobs N] [--scale N] [--json PATH] [--check]
  foray-gen serve    (--socket PATH | --tcp HOST:PORT) [--workers N] [--queue N]
                     [--cache N] [--spill DIR] [--jobs N]
  foray-gen client   (--socket PATH | --tcp HOST:PORT) ACTION [flags]
                     ACTION: submit (--workload NAME [--scale N] | <prog.mc> |
                             --trace FILE.ftrace) [--kind model|report|dse]
                             [--nexec N] [--nloc N] [--sample S] [--engine E]
                             [--inputs v,v,..] [--priority 0-9] [--no-wait]
                           | wait JOB [--timeout-ms N] | poll JOB
                           | stats | ping | shutdown

program sources (model/report/trace/spm):
  <prog.mc>        a mini-C source file, or
  --workload NAME  a built-in corpus workload (jpegc, lamec, susanc, fftc,
                   gsmc, adpcmc, histoc) with its canonical inputs;
                   --scale N sizes it

analysis flags (model/report/spm/trace analyze):
  --sharded   analyze on K parallel shard workers fed over bounded channels
              while profiling runs (identical output, bounded memory)
  --jobs N    shard/worker count for --sharded (default: available parallelism)

trace file flags:
  --trace-format v1|v2  container version for `trace record` (default: v2,
              compressed + checksummed + indexed; v1 is the frozen
              fixed-width format — both stay readable forever)
  --from-loop N  for `trace analyze`: seek to loop N via the v2 checkpoint
              index and analyze from its first checkpoint (needs a v2
              file written with the index)

sampling (model/report/spm/trace, trace record, trace analyze):
  --sample S  deterministic access sampling: every:N | warmup:N |
              reservoir:N[:SEED] | full (default); checkpoints always pass,
              and the same program + spec yields the same model for any
              worker count

profiling flags (model/report/trace/spm):
  --engine E  execution engine: `vm` (compiled bytecode, default) or `tree`
              (tree-walking oracle); both emit byte-identical traces

dse flags:
  --workloads  corpus subset by name, or `all` (default: all)
  --capacities SPM capacity grid in bytes (default: 256,512,1024,2048,4096,8192)
  --models     energy-model presets (default,small-spm,medium-spm,large-spm) or
               a user-supplied point as custom:MAIN_NJ:SPM_NJ:BASE_BYTES:SLOPE
  --jobs N     pool worker count (default: available parallelism)
  --scale N    workload size multiplier (default: 1)
  --json PATH  also write the machine-readable foray-dse/v1 report
  --check      fail (exit 3) unless every Pareto front is non-empty and monotone

serve flags:
  --workers N  compute threads (default 1); --queue N bounded queue depth
               (default 64, overflow is a typed queue_full rejection);
  --cache N    in-memory result-cache entries (default 128); --spill DIR
               spills evictions to disk; --jobs N analysis shards per job
               (default: available parallelism)

client notes:
  submit waits and prints the result payload verbatim (byte-comparable
  across runs: cached and cold responses are identical); --no-wait prints
  the job id instead; stats prints the raw counters JSON line";

#[derive(Debug)]
enum CliError {
    Usage(String),
    Compile(String),
    Runtime(String),
    Io(std::io::Error),
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

impl From<foray::PipelineError> for CliError {
    fn from(e: foray::PipelineError) -> Self {
        match e {
            foray::PipelineError::Frontend(e) => CliError::Compile(e.to_string()),
            foray::PipelineError::Runtime(e) => CliError::Runtime(e.to_string()),
        }
    }
}

struct Options {
    file: String,
    workload: Option<String>,
    scale: u32,
    n_exec: u64,
    n_loc: u64,
    inputs: Vec<i64>,
    format: String,
    output: Option<String>,
    capacity: u32,
    executable: bool,
    sharded: bool,
    jobs: usize,
    engine: Engine,
    sample: SampleSpec,
    trace_format: minic_trace::FormatVersion,
    from_loop: Option<u32>,
}

fn parse_options(args: &[String]) -> Result<Options, CliError> {
    let mut opts = Options {
        file: String::new(),
        workload: None,
        scale: 1,
        n_exec: 20,
        n_loc: 10,
        inputs: Vec::new(),
        format: "text".to_owned(),
        output: None,
        capacity: 4096,
        executable: false,
        sharded: false,
        jobs: 0,
        engine: Engine::default(),
        sample: SampleSpec::default(),
        trace_format: minic_trace::FormatVersion::default(),
        from_loop: None,
    };
    let mut it = args.iter();
    let need = |it: &mut std::slice::Iter<'_, String>, flag: &str| {
        it.next().cloned().ok_or_else(|| CliError::Usage(format!("{flag} needs a value")))
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--nexec" => opts.n_exec = parse_num(&need(&mut it, "--nexec")?)?,
            "--nloc" => opts.n_loc = parse_num(&need(&mut it, "--nloc")?)?,
            "--capacity" => opts.capacity = parse_num(&need(&mut it, "--capacity")?)? as u32,
            "--executable" => opts.executable = true,
            "--sharded" => opts.sharded = true,
            "--jobs" => opts.jobs = parse_num(&need(&mut it, "--jobs")?)? as usize,
            "--format" => opts.format = need(&mut it, "--format")?,
            "--engine" => {
                let name = need(&mut it, "--engine")?;
                opts.engine = Engine::parse(&name).ok_or_else(|| {
                    CliError::Usage(format!("unknown engine `{name}` (use `tree` or `vm`)"))
                })?;
            }
            "--sample" => {
                let spec = need(&mut it, "--sample")?;
                opts.sample = SampleSpec::parse(&spec)
                    .map_err(|e| CliError::Usage(format!("bad --sample: {e}")))?;
            }
            "--trace-format" => {
                let name = need(&mut it, "--trace-format")?;
                opts.trace_format = minic_trace::FormatVersion::parse(&name).ok_or_else(|| {
                    CliError::Usage(format!("unknown trace format `{name}` (use `v1` or `v2`)"))
                })?;
            }
            "--from-loop" => {
                let n = parse_num(&need(&mut it, "--from-loop")?)?;
                opts.from_loop = Some(u32::try_from(n).map_err(|_| {
                    CliError::Usage(format!("--from-loop {n} does not fit a loop id"))
                })?);
            }
            "--workload" => opts.workload = Some(need(&mut it, "--workload")?),
            "--scale" => opts.scale = parse_num(&need(&mut it, "--scale")?)?.max(1) as u32,
            "-o" | "--output" => opts.output = Some(need(&mut it, "-o")?),
            "--inputs" => {
                let list = need(&mut it, "--inputs")?;
                opts.inputs = list
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|s| {
                        s.trim()
                            .parse()
                            .map_err(|_| CliError::Usage(format!("bad input value `{s}`")))
                    })
                    .collect::<Result<_, _>>()?;
            }
            other if other.starts_with('-') => {
                return Err(CliError::Usage(format!("unknown flag `{other}`")));
            }
            file => {
                if opts.file.is_empty() {
                    opts.file = file.to_owned();
                } else {
                    return Err(CliError::Usage(format!("unexpected argument `{file}`")));
                }
            }
        }
    }
    Ok(opts)
}

/// Resolves the program to run: a source file, or a `--workload` from the
/// corpus (installing the workload's canonical inputs unless the user gave
/// `--inputs`). Mutates `opts.inputs` so [`pipeline`] sees the result.
fn resolve_source(opts: &mut Options) -> Result<String, CliError> {
    match &opts.workload {
        Some(name) => {
            if !opts.file.is_empty() {
                return Err(CliError::Usage(format!(
                    "give either a program file or --workload, not both (got `{}`)",
                    opts.file
                )));
            }
            let params = foray_workloads::Params { scale: opts.scale };
            let w = foray_workloads::by_name(name, params)
                .ok_or_else(|| CliError::Usage(format!("unknown workload `{name}`")))?;
            if opts.inputs.is_empty() {
                opts.inputs = w.inputs.clone();
            }
            Ok(w.source)
        }
        None => {
            if opts.file.is_empty() {
                return Err(CliError::Usage("missing program file (or --workload)".to_owned()));
            }
            read_source(&opts.file)
        }
    }
}

fn parse_num(s: &str) -> Result<u64, CliError> {
    s.parse().map_err(|_| CliError::Usage(format!("bad number `{s}`")))
}

fn read_source(path: &str) -> Result<String, CliError> {
    std::fs::read_to_string(path).map_err(|e| CliError::Usage(format!("cannot read `{path}`: {e}")))
}

fn pipeline(opts: &Options) -> ForayGen {
    ForayGen::new()
        .filter(FilterConfig { n_exec: opts.n_exec, n_loc: opts.n_loc })
        .inputs(opts.inputs.clone())
        .analyzer(AnalyzerConfig {
            shards: opts.jobs,
            sample: opts.sample,
            ..AnalyzerConfig::default()
        })
        .sharded(opts.sharded)
        .engine(opts.engine)
}

fn sim_config(opts: &Options) -> minic_sim::SimConfig {
    minic_sim::SimConfig { engine: opts.engine, ..minic_sim::SimConfig::default() }
}

fn run(args: &[String]) -> Result<(), CliError> {
    let Some(cmd) = args.first() else {
        return Err(CliError::Usage("missing command".to_owned()));
    };
    if cmd == "dse" {
        // Corpus-driven: no program file argument, own flag set.
        return cmd_dse(&parse_dse_options(&args[1..])?);
    }
    if cmd == "serve" {
        // The daemon: own flag set, no program file argument.
        return cmd_serve(&parse_serve_options(&args[1..])?);
    }
    if cmd == "client" {
        return cmd_client(&args[1..]);
    }
    if cmd == "trace" {
        // The file-pipeline sub-subcommands; bare `trace` keeps its legacy
        // dump behaviour below.
        match args.get(1).map(String::as_str) {
            Some("record") => {
                let mut opts = parse_options(&args[2..])?;
                let src = resolve_source(&mut opts)?;
                return cmd_trace_record(&src, &opts);
            }
            Some("analyze") => return cmd_trace_analyze(&parse_options(&args[2..])?),
            _ => {}
        }
    }
    let mut opts = parse_options(&args[1..])?;
    let src = resolve_source(&mut opts)?;
    match cmd.as_str() {
        "model" => cmd_model(&src, &opts),
        "report" => cmd_report(&src, &opts),
        "trace" => cmd_trace(&src, &opts),
        "annotate" => cmd_annotate(&src),
        "spm" => cmd_spm(&src, &opts),
        other => Err(CliError::Usage(format!("unknown command `{other}`"))),
    }
}

fn cmd_model(src: &str, opts: &Options) -> Result<(), CliError> {
    let out = pipeline(opts).run_source(src)?;
    if opts.executable {
        print!("{}", foray::codegen::emit_minic(&out.model));
    } else {
        print!("{}", out.code);
    }
    Ok(())
}

fn cmd_annotate(src: &str) -> Result<(), CliError> {
    let prog = minic::frontend(src).map_err(|e| CliError::Compile(e.to_string()))?;
    print!("{}", minic::pretty(&prog));
    Ok(())
}

fn cmd_trace(src: &str, opts: &Options) -> Result<(), CliError> {
    let prog = minic::frontend(src).map_err(|e| CliError::Compile(e.to_string()))?;
    let (_, records) = minic_sim::run(&prog, &sim_config(opts), &opts.inputs)
        .map_err(|e| CliError::Runtime(e.to_string()))?;
    let records = apply_sampling(records, opts.sample);
    let bytes = match opts.format.as_str() {
        "text" => minic_trace::text::to_text(&records).into_bytes(),
        "binary" => minic_trace::binary::to_bytes(&records),
        "framed" => {
            let mut out = Vec::new();
            minic_trace::file::write_to_with(&mut out, &records, opts.trace_format)?;
            out
        }
        other => return Err(CliError::Usage(format!("unknown trace format `{other}`"))),
    };
    match &opts.output {
        Some(path) => std::fs::write(path, bytes)?,
        None => std::io::stdout().write_all(&bytes)?,
    }
    Ok(())
}

/// Thins a dumped record stream per `--sample` (identity specs pass the
/// vector through untouched).
fn apply_sampling(records: Vec<minic_trace::Record>, spec: SampleSpec) -> Vec<minic_trace::Record> {
    use minic_trace::TraceSink as _;
    if spec.is_identity() {
        return records;
    }
    let mut sink = minic_trace::SampleSink::new(spec, minic_trace::VecSink::new());
    for r in &records {
        sink.record(r);
    }
    sink.finish();
    sink.into_inner().into_records()
}

/// `trace record`: profile the program with a [`minic_trace::TraceWriter`]
/// riding the simulation as the sink (behind a `--sample` filter), so the
/// `foray-trace` file (`--trace-format`, v2 by default) is written block
/// by block without ever materializing the record stream.
fn cmd_trace_record(src: &str, opts: &Options) -> Result<(), CliError> {
    let Some(path) = &opts.output else {
        return Err(CliError::Usage("trace record needs -o FILE.ftrace".to_owned()));
    };
    let prog = minic::frontend(src).map_err(|e| CliError::Compile(e.to_string()))?;
    let file = std::fs::File::create(path)?;
    let mut writer =
        minic_trace::TraceWriter::with_format(std::io::BufWriter::new(file), opts.trace_format);
    let mut sink = minic_trace::SampleSink::new(opts.sample, &mut writer);
    let run = minic_sim::run_with_sink(&prog, &sim_config(opts), &opts.inputs, &mut sink);
    let (seen, kept) = (sink.seen(), sink.kept());
    drop(sink);
    if let Err(e) = run {
        // The writer never reached `finish`: the file on disk is a
        // footer-less stub every reader rejects. Remove it instead of
        // leaving a corpse that later `trace analyze` runs trip over.
        drop(writer);
        std::fs::remove_file(path).ok();
        return Err(CliError::Runtime(e.to_string()));
    }
    if let Some(e) = writer.io_error() {
        return Err(CliError::Io(std::io::Error::new(e.kind(), e.to_string())));
    }
    let records = writer.records_written();
    let bytes = std::fs::metadata(path)?.len();
    println!(
        "recorded {records} records to {path} ({bytes} bytes, foray-trace/{})",
        opts.trace_format
    );
    if seen != kept {
        println!("sampled {kept} of {seen} accesses (--sample {})", opts.sample);
    }
    Ok(())
}

/// `trace analyze`: replay a recorded `foray-trace` file (either format
/// version) through the (optionally sharded) analyzer and print the
/// extracted FORAY model — byte-identical to what `model` prints for the
/// same program and thresholds.
///
/// Without `--from-loop` the file is streamed through
/// [`minic_trace::TraceReader`] (one block in memory at a time), so traces
/// bigger than RAM analyze fine — the sequential analyzer is
/// constant-space, and `--sharded` pipes bounded record blocks to workers
/// as they decode (no full-trace buffer on that path either). With
/// `--from-loop N` the file is opened as a [`minic_trace::TraceFile`] and
/// the v2 checkpoint index seeks straight to loop `N`'s region; only the
/// trace suffix from its first checkpoint is decoded and analyzed.
fn cmd_trace_analyze(opts: &Options) -> Result<(), CliError> {
    if opts.workload.is_some() {
        return Err(CliError::Usage("trace analyze reads a FILE.ftrace, not --workload".into()));
    }
    if opts.file.is_empty() {
        return Err(CliError::Usage("trace analyze needs a FILE.ftrace argument".to_owned()));
    }
    let config =
        AnalyzerConfig { shards: opts.jobs, sample: opts.sample, ..AnalyzerConfig::default() };
    let analysis = if let Some(loop_id) = opts.from_loop {
        let file = minic_trace::TraceFile::open(&opts.file)
            .map_err(|e| CliError::Runtime(e.to_string()))?;
        if file.index().is_none() {
            return Err(CliError::Runtime(format!(
                "`{}` is a foray-trace/{} file without a checkpoint index; \
                 --from-loop needs a v2 file recorded with the index",
                opts.file,
                file.version()
            )));
        }
        let Some(records) = file.records_from_loop(minic::LoopId(loop_id)) else {
            return Err(CliError::Runtime(format!(
                "loop {loop_id} never runs in `{}` (not covered by the checkpoint index)",
                opts.file
            )));
        };
        if opts.sharded {
            foray::analyze_sharded_source(records, config)
        } else {
            foray::analyze_source_with(records, config)
        }
    } else {
        let file = std::fs::File::open(&opts.file)
            .map_err(|e| CliError::Usage(format!("cannot read `{}`: {e}", opts.file)))?;
        let reader = minic_trace::TraceReader::new(std::io::BufReader::new(file))
            .map_err(|e| CliError::Runtime(e.to_string()))?;
        if opts.sharded {
            foray::analyze_streaming_source(reader, config)
        } else {
            foray::analyze_source_with(reader, config)
        }
    }
    .map_err(|e| CliError::Runtime(e.to_string()))?;
    let model =
        ForayModel::extract(&analysis, &FilterConfig { n_exec: opts.n_exec, n_loc: opts.n_loc });
    print!("{}", foray::codegen::emit(&model));
    Ok(())
}

fn cmd_report(src: &str, opts: &Options) -> Result<(), CliError> {
    let out = pipeline(opts).run_source(src)?;
    let mut prog = minic::parse(src).map_err(|e| CliError::Compile(e.to_string()))?;
    minic::check(&mut prog).map_err(|e| CliError::Compile(e.to_string()))?;
    let st = foray_baseline::analyze_program(&prog);
    let loops: std::collections::HashSet<minic::LoopId> =
        st.canonical_loops.iter().copied().collect();
    let cmp = foray::CaptureComparison::compute(&out.model, &loops, &st.affine_instrs());
    let mem = foray::MemoryBehavior::compute(&out.analysis, &out.model);

    println!("== FORAY model ==");
    print!("{}", out.code);
    println!();
    println!("== reconstructed loop tree (Algorithm 2) ==");
    print!("{}", out.analysis.tree().render());
    println!();
    println!("== capture ==");
    println!(
        "model: {} loops, {} references; statically visible: {} loops, {} references",
        cmp.model_loops, cmp.model_refs, cmp.static_loops, cmp.static_refs
    );
    println!(
        "not in FORAY form in the source: {:.0}% of loops, {:.0}% of references",
        cmp.pct_loops_not_static(),
        cmp.pct_refs_not_static()
    );
    if let Some(g) = cmp.gain() {
        println!("analyzable-reference gain over static analysis: {g:.1}x");
    }
    println!();
    println!("== memory behaviour ==");
    println!(
        "accesses: {} total, {} in model ({:.0}%), {} in system library ({:.0}%)",
        mem.total_accesses,
        mem.model_accesses,
        foray::MemoryBehavior::pct(mem.model_accesses, mem.total_accesses),
        mem.lib_accesses,
        foray::MemoryBehavior::pct(mem.lib_accesses, mem.total_accesses),
    );
    println!(
        "footprint: {} addresses total, {} in model ({:.0}%)",
        mem.total_footprint,
        mem.model_footprint,
        foray::MemoryBehavior::pct(mem.model_footprint, mem.total_footprint),
    );
    println!();
    println!("== back-annotation (Phase III) ==");
    for note in foray::srcmap::annotate(&out.model, &out.program) {
        match note.site {
            Some(s) => println!(
                "{} -> {} in {}() at {} ({})",
                note.array,
                s.base.as_deref().unwrap_or("?"),
                s.function,
                s.loc,
                s.text
            ),
            None => println!("{} -> (synthetic traffic, no source site)", note.array),
        }
    }
    if !out.hints.is_empty() {
        println!();
        println!("== inlining hints ==");
        for h in &out.hints {
            println!(
                "duplicate `{}`: loop {} runs in {} contexts ({})",
                h.function,
                h.loop_id,
                h.contexts.len(),
                h.context_paths.join(" | ")
            );
        }
    }
    Ok(())
}

fn cmd_spm(src: &str, opts: &Options) -> Result<(), CliError> {
    let out = pipeline(opts).run_source(src)?;
    let flow = foray_spm::SpmFlow::default();
    let report = flow.run(&out.model, opts.capacity);
    println!("== buffer candidates ==");
    for c in &report.candidates {
        println!(
            "{} level {}: {} bytes, reuse x{:.1}, savings {:.1} nJ",
            c.array,
            c.level,
            c.size_bytes,
            c.reuse_factor(),
            c.savings_nj(flow.energy())
        );
    }
    println!();
    println!(
        "== selection (capacity {} bytes): {} buffers, {} bytes, {:.1} nJ saved ==",
        opts.capacity,
        report.selection.chosen.len(),
        report.selection.used_bytes,
        report.selection.savings_nj
    );
    println!();
    println!("== transformed FORAY model ==");
    print!("{}", report.code);
    Ok(())
}

struct DseOptions {
    workloads: Vec<String>,
    capacities: Vec<u32>,
    models: Vec<String>,
    jobs: usize,
    scale: u32,
    json: Option<String>,
    check: bool,
}

fn parse_dse_options(args: &[String]) -> Result<DseOptions, CliError> {
    let mut opts = DseOptions {
        workloads: vec!["all".to_owned()],
        capacities: vec![256, 512, 1024, 2048, 4096, 8192],
        models: foray_spm::energy::PRESET_NAMES.iter().map(|s| (*s).to_owned()).collect(),
        jobs: 0,
        scale: 1,
        json: None,
        check: false,
    };
    let mut it = args.iter();
    let need = |it: &mut std::slice::Iter<'_, String>, flag: &str| {
        it.next().cloned().ok_or_else(|| CliError::Usage(format!("{flag} needs a value")))
    };
    let list = |s: &str| -> Vec<String> {
        s.split(',').map(str::trim).filter(|p| !p.is_empty()).map(str::to_owned).collect()
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workloads" => opts.workloads = list(&need(&mut it, "--workloads")?),
            "--models" => opts.models = list(&need(&mut it, "--models")?),
            "--capacities" => {
                opts.capacities = list(&need(&mut it, "--capacities")?)
                    .iter()
                    .map(|s| parse_num(s).map(|n| n as u32))
                    .collect::<Result<_, _>>()?;
            }
            "--jobs" => opts.jobs = parse_num(&need(&mut it, "--jobs")?)? as usize,
            "--scale" => opts.scale = parse_num(&need(&mut it, "--scale")?)?.max(1) as u32,
            "--json" => opts.json = Some(need(&mut it, "--json")?),
            "--check" => opts.check = true,
            other => return Err(CliError::Usage(format!("unknown dse argument `{other}`"))),
        }
    }
    if opts.capacities.is_empty() {
        return Err(CliError::Usage("--capacities needs at least one value".to_owned()));
    }
    if opts.workloads.is_empty() {
        return Err(CliError::Usage("--workloads needs at least one name".to_owned()));
    }
    if opts.models.is_empty() {
        return Err(CliError::Usage("--models needs at least one name".to_owned()));
    }
    Ok(opts)
}

/// Resolves a `--models` entry: a preset name, or a user-supplied point as
/// `custom:MAIN_NJ:SPM_NJ:BASE_BYTES:SLOPE` (named `custom`).
fn parse_energy_model(spec: &str) -> Result<(String, foray_spm::EnergyModel), CliError> {
    if let Some(params) = spec.strip_prefix("custom:") {
        let parts: Vec<&str> = params.split(':').collect();
        let [main, spm, bytes, slope] = parts.as_slice() else {
            return Err(CliError::Usage(format!(
                "bad custom model `{spec}` (want custom:MAIN_NJ:SPM_NJ:BASE_BYTES:SLOPE)"
            )));
        };
        let f = |s: &str| {
            s.parse::<f64>().map_err(|_| CliError::Usage(format!("bad number `{s}` in `{spec}`")))
        };
        return Ok((
            "custom".to_owned(),
            foray_spm::EnergyModel {
                main_access_nj: f(main)?,
                spm_base_nj: f(spm)?,
                spm_base_bytes: parse_num(bytes)? as u32,
                spm_size_slope: f(slope)?,
            },
        ));
    }
    match foray_spm::EnergyModel::preset(spec) {
        Some(m) => Ok((spec.to_owned(), m)),
        None => Err(CliError::Usage(format!(
            "unknown energy model `{spec}` (presets: {})",
            foray_spm::energy::PRESET_NAMES.join(", ")
        ))),
    }
}

fn cmd_dse(opts: &DseOptions) -> Result<(), CliError> {
    let params = foray_workloads::Params { scale: opts.scale };
    let workloads: Vec<foray_workloads::Workload> = if opts.workloads.iter().any(|w| w == "all") {
        foray_workloads::all(params)
    } else {
        opts.workloads
            .iter()
            .map(|name| {
                foray_workloads::by_name(name, params)
                    .ok_or_else(|| CliError::Usage(format!("unknown workload `{name}`")))
            })
            .collect::<Result<_, _>>()?
    };
    let mut space = foray_spm::SpmDesignSpace::new()
        .capacities(&opts.capacities)
        .workloads(workloads.iter().map(|w| w.batch_job(ForayGen::new())));
    for spec in &opts.models {
        let (name, model) = parse_energy_model(spec)?;
        space = space.model(name, model);
    }
    let result = space.explore(opts.jobs).map_err(|e| CliError::Runtime(e.to_string()))?;
    print!("{}", result.render_text());
    if let Some(path) = &opts.json {
        std::fs::write(path, result.to_json())?;
    }
    if opts.check {
        result.check().map_err(CliError::Runtime)?;
    }
    Ok(())
}

struct ServeOptions {
    addr: foray_serve::ServeAddr,
    workers: usize,
    queue: usize,
    cache: usize,
    spill: Option<String>,
    jobs: usize,
}

/// Parses `--socket PATH | --tcp HOST:PORT` into a serve address
/// (shared by `serve` and `client`).
fn parse_addr(
    socket: Option<String>,
    tcp: Option<String>,
) -> Result<foray_serve::ServeAddr, CliError> {
    match (socket, tcp) {
        (Some(p), None) => Ok(foray_serve::ServeAddr::Unix(p.into())),
        (None, Some(a)) => Ok(foray_serve::ServeAddr::Tcp(a)),
        _ => {
            Err(CliError::Usage("give exactly one of --socket PATH or --tcp HOST:PORT".to_owned()))
        }
    }
}

fn parse_serve_options(args: &[String]) -> Result<ServeOptions, CliError> {
    let (mut socket, mut tcp, mut spill) = (None, None, None);
    let (mut workers, mut queue, mut cache, mut jobs) = (1usize, 64usize, 128usize, 0usize);
    let mut it = args.iter();
    let need = |it: &mut std::slice::Iter<'_, String>, flag: &str| {
        it.next().cloned().ok_or_else(|| CliError::Usage(format!("{flag} needs a value")))
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--socket" => socket = Some(need(&mut it, "--socket")?),
            "--tcp" => tcp = Some(need(&mut it, "--tcp")?),
            "--workers" => workers = parse_num(&need(&mut it, "--workers")?)?.max(1) as usize,
            "--queue" => queue = parse_num(&need(&mut it, "--queue")?)?.max(1) as usize,
            "--cache" => cache = parse_num(&need(&mut it, "--cache")?)? as usize,
            "--spill" => spill = Some(need(&mut it, "--spill")?),
            "--jobs" => jobs = parse_num(&need(&mut it, "--jobs")?)? as usize,
            other => return Err(CliError::Usage(format!("unknown serve flag `{other}`"))),
        }
    }
    Ok(ServeOptions { addr: parse_addr(socket, tcp)?, workers, queue, cache, spill, jobs })
}

fn cmd_serve(opts: &ServeOptions) -> Result<(), CliError> {
    let server = foray_serve::Server::new(foray_serve::ServeConfig {
        workers: opts.workers,
        queue_capacity: opts.queue,
        cache_entries: opts.cache,
        spill_dir: opts.spill.clone().map(Into::into),
        default_shards: opts.jobs,
        ..foray_serve::ServeConfig::default()
    });
    eprintln!("forayd listening on {}", opts.addr);
    foray_serve::serve(server, &opts.addr)?;
    eprintln!("forayd drained and exited");
    Ok(())
}

struct ClientOptions {
    addr: foray_serve::ServeAddr,
    action: String,
    /// Positional after the action: job id (wait/poll) or program file
    /// (submit).
    arg: Option<String>,
    workload: Option<String>,
    trace: Option<String>,
    kind: foray_serve::JobKind,
    scale: u32,
    n_exec: u64,
    n_loc: u64,
    sample: SampleSpec,
    engine: Engine,
    inputs: Option<Vec<i64>>,
    priority: u8,
    no_wait: bool,
    timeout_ms: Option<u64>,
}

fn parse_client_options(args: &[String]) -> Result<ClientOptions, CliError> {
    let (mut socket, mut tcp) = (None, None);
    let mut o = ClientOptions {
        addr: foray_serve::ServeAddr::Tcp(String::new()), // placeholder
        action: String::new(),
        arg: None,
        workload: None,
        trace: None,
        kind: foray_serve::JobKind::Model,
        scale: 1,
        n_exec: 20,
        n_loc: 10,
        sample: SampleSpec::default(),
        engine: Engine::default(),
        inputs: None,
        priority: 0,
        no_wait: false,
        timeout_ms: None,
    };
    let mut it = args.iter();
    let need = |it: &mut std::slice::Iter<'_, String>, flag: &str| {
        it.next().cloned().ok_or_else(|| CliError::Usage(format!("{flag} needs a value")))
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--socket" => socket = Some(need(&mut it, "--socket")?),
            "--tcp" => tcp = Some(need(&mut it, "--tcp")?),
            "--workload" => o.workload = Some(need(&mut it, "--workload")?),
            "--trace" => o.trace = Some(need(&mut it, "--trace")?),
            "--kind" => {
                let name = need(&mut it, "--kind")?;
                o.kind = foray_serve::JobKind::parse(&name).ok_or_else(|| {
                    CliError::Usage(format!("unknown kind `{name}` (use model/report/dse)"))
                })?;
            }
            "--scale" => o.scale = parse_num(&need(&mut it, "--scale")?)?.max(1) as u32,
            "--nexec" => o.n_exec = parse_num(&need(&mut it, "--nexec")?)?,
            "--nloc" => o.n_loc = parse_num(&need(&mut it, "--nloc")?)?,
            "--sample" => {
                let spec = need(&mut it, "--sample")?;
                o.sample = SampleSpec::parse(&spec)
                    .map_err(|e| CliError::Usage(format!("bad --sample: {e}")))?;
            }
            "--engine" => {
                let name = need(&mut it, "--engine")?;
                o.engine = Engine::parse(&name).ok_or_else(|| {
                    CliError::Usage(format!("unknown engine `{name}` (use `tree` or `vm`)"))
                })?;
            }
            "--inputs" => {
                let list = need(&mut it, "--inputs")?;
                o.inputs = Some(
                    list.split(',')
                        .filter(|s| !s.is_empty())
                        .map(|s| {
                            s.trim()
                                .parse()
                                .map_err(|_| CliError::Usage(format!("bad input value `{s}`")))
                        })
                        .collect::<Result<_, _>>()?,
                );
            }
            "--priority" => {
                let n = parse_num(&need(&mut it, "--priority")?)?;
                if n > u64::from(foray_serve::MAX_PRIORITY) {
                    return Err(CliError::Usage(format!("--priority {n} is out of range 0-9")));
                }
                o.priority = n as u8;
            }
            "--no-wait" => o.no_wait = true,
            "--timeout-ms" => o.timeout_ms = Some(parse_num(&need(&mut it, "--timeout-ms")?)?),
            other if other.starts_with('-') => {
                return Err(CliError::Usage(format!("unknown client flag `{other}`")));
            }
            word => {
                if o.action.is_empty() {
                    o.action = word.to_owned();
                } else if o.arg.is_none() {
                    o.arg = Some(word.to_owned());
                } else {
                    return Err(CliError::Usage(format!("unexpected argument `{word}`")));
                }
            }
        }
    }
    if o.action.is_empty() {
        return Err(CliError::Usage(
            "client needs an action: submit, wait, poll, stats, ping, shutdown".to_owned(),
        ));
    }
    o.addr = parse_addr(socket, tcp)?;
    Ok(o)
}

/// Builds the submit spec from client flags: exactly one input among
/// `--workload`, a program file, and `--trace`.
fn client_job_spec(o: &ClientOptions) -> Result<foray_serve::JobSpec, CliError> {
    let input = match (&o.workload, &o.arg, &o.trace) {
        (Some(w), None, None) => foray_serve::JobInput::Workload(w.clone()),
        (None, Some(file), None) => foray_serve::JobInput::Source(read_source(file)?),
        (None, None, Some(t)) => foray_serve::JobInput::Trace(t.clone()),
        _ => {
            return Err(CliError::Usage(
                "submit needs exactly one of --workload NAME, a program file, or --trace FILE"
                    .to_owned(),
            ))
        }
    };
    Ok(foray_serve::JobSpec {
        kind: o.kind,
        input,
        scale: o.scale,
        engine: o.engine,
        n_exec: o.n_exec,
        n_loc: o.n_loc,
        sample: o.sample,
        inputs: o.inputs.clone(),
        priority: o.priority,
    })
}

/// Maps a typed daemon failure to an exit-3 runtime error.
fn client_fail(e: foray_serve::ProtoError) -> CliError {
    CliError::Runtime(e.to_string())
}

fn cmd_client(args: &[String]) -> Result<(), CliError> {
    let o = parse_client_options(args)?;
    let mut client = foray_serve::Client::connect(&o.addr)?;
    use foray_serve::Response;
    match o.action.as_str() {
        "submit" => {
            let spec = client_job_spec(&o)?;
            if o.no_wait {
                match client.submit(&spec)? {
                    Response::Submitted { job, hit, key } => println!("{job} hit={hit} key={key}"),
                    Response::Error(e) => return Err(client_fail(e)),
                    other => return Err(CliError::Runtime(format!("unexpected reply: {other:?}"))),
                }
            } else {
                // The payload goes to stdout *verbatim* so callers can
                // byte-compare runs (the serve-smoke CI job diffs these).
                match client.run(&spec)? {
                    Ok((_hit, payload)) => print!("{payload}"),
                    Err(e) => return Err(client_fail(e)),
                }
            }
        }
        "wait" => {
            let job =
                o.arg.clone().ok_or_else(|| CliError::Usage("wait needs a job id".to_owned()))?;
            match client.wait(&job, o.timeout_ms)? {
                Response::Result { result, .. } => print!("{result}"),
                Response::Error(e) => return Err(client_fail(e)),
                other => return Err(CliError::Runtime(format!("unexpected reply: {other:?}"))),
            }
        }
        "poll" => {
            let job =
                o.arg.clone().ok_or_else(|| CliError::Usage("poll needs a job id".to_owned()))?;
            match client.poll(&job)? {
                Response::Status { state, .. } => println!("{state}"),
                Response::Error(e) => return Err(client_fail(e)),
                other => return Err(CliError::Runtime(format!("unexpected reply: {other:?}"))),
            }
        }
        "stats" => match client.stats()? {
            // The raw stats line *is* the machine-readable output.
            r @ Response::Stats(_) => println!("{}", r.render()),
            Response::Error(e) => return Err(client_fail(e)),
            other => return Err(CliError::Runtime(format!("unexpected reply: {other:?}"))),
        },
        "ping" => match client.ping()? {
            Response::Pong => println!("pong"),
            Response::Error(e) => return Err(client_fail(e)),
            other => return Err(CliError::Runtime(format!("unexpected reply: {other:?}"))),
        },
        "shutdown" => match client.shutdown()? {
            Response::ShutdownStarted => println!("draining"),
            Response::Error(e) => return Err(client_fail(e)),
            other => return Err(CliError::Runtime(format!("unexpected reply: {other:?}"))),
        },
        other => {
            return Err(CliError::Usage(format!(
                "unknown client action `{other}` (use submit/wait/poll/stats/ping/shutdown)"
            )))
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_temp(name: &str, content: &str) -> String {
        let path = std::env::temp_dir().join(format!("foray_cli_test_{name}.mc"));
        std::fs::write(&path, content).unwrap();
        path.to_string_lossy().into_owned()
    }

    const PROG: &str = "int a[64];\nvoid main() { int i; for (i = 0; i < 64; i++) { a[i] = i; } }";

    #[test]
    fn model_command_runs() {
        let path = write_temp("model", PROG);
        let args = vec!["model".to_owned(), path];
        assert!(run(&args).is_ok());
    }

    #[test]
    fn options_parse() {
        let path = write_temp("opts", PROG);
        let args: Vec<String> =
            ["report", &path, "--nexec", "5", "--nloc", "5", "--inputs", "1,2,3"]
                .iter()
                .map(|s| s.to_string())
                .collect();
        assert!(run(&args).is_ok());
    }

    #[test]
    fn sharded_flags_parse_and_run() {
        let path = write_temp("sharded", PROG);
        let args: Vec<String> = ["model", path.as_str(), "--sharded", "--jobs", "3"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(run(&args).is_ok());
        let parsed = parse_options(&args[1..]).unwrap();
        assert!(parsed.sharded);
        assert_eq!(parsed.jobs, 3);
        // --jobs alone (no --sharded) parses but leaves the sequential path.
        let seq = parse_options(&["x.mc".to_owned(), "--jobs".to_owned(), "2".to_owned()]).unwrap();
        assert!(!seq.sharded);
        assert!(matches!(
            parse_options(&["x.mc".to_owned(), "--jobs".to_owned()]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn sample_flag_parses_and_runs() {
        let path = write_temp("sample", PROG);
        let args: Vec<String> =
            ["model", path.as_str(), "--sample", "every:2"].iter().map(|s| s.to_string()).collect();
        assert!(run(&args).is_ok());
        let parsed = parse_options(&args[1..]).unwrap();
        assert_eq!(parsed.sample, SampleSpec::EveryNth { n: 2 });
        // Default is full analysis; malformed specs are usage errors.
        assert_eq!(parse_options(&["x.mc".to_owned()]).unwrap().sample, SampleSpec::Full);
        for bad in ["coinflip", "every:0", "every"] {
            assert!(
                matches!(
                    parse_options(&["x.mc".to_owned(), "--sample".to_owned(), bad.to_owned()]),
                    Err(CliError::Usage(_))
                ),
                "--sample {bad} should be rejected"
            );
        }
    }

    #[test]
    fn sampled_record_matches_embedded_sampling() {
        // Recording a thinned trace and analyzing it in full must equal
        // analyzing the full trace with the same spec embedded — the
        // decisions are per-reference, so thinning commutes with analysis.
        let prog = write_temp("sample_rec", PROG);
        let ftrace = std::env::temp_dir().join("foray_cli_test_sampled.ftrace");
        let ftrace_s = ftrace.to_string_lossy().into_owned();
        let record: Vec<String> =
            ["trace", "record", prog.as_str(), "-o", &ftrace_s, "--sample", "every:3"]
                .iter()
                .map(|s| s.to_string())
                .collect();
        assert!(run(&record).is_ok());
        let file = minic_trace::TraceFile::open(&ftrace).unwrap();
        let thinned = foray::analyze_source(&file).unwrap();
        let embedded = ForayGen::new()
            .analyzer(AnalyzerConfig {
                sample: SampleSpec::EveryNth { n: 3 },
                ..AnalyzerConfig::default()
            })
            .run_source(PROG)
            .unwrap();
        assert_eq!(thinned, embedded.analysis);
        std::fs::remove_file(&ftrace).ok();
    }

    #[test]
    fn engine_flag_parses_and_both_engines_run() {
        let path = write_temp("engine", PROG);
        for engine in ["tree", "vm"] {
            let args: Vec<String> = ["model", path.as_str(), "--engine", engine]
                .iter()
                .map(|s| s.to_string())
                .collect();
            assert!(run(&args).is_ok(), "--engine {engine}");
            let parsed = parse_options(&args[1..]).unwrap();
            assert_eq!(parsed.engine.as_str(), engine);
        }
        assert!(matches!(
            parse_options(&["x.mc".to_owned(), "--engine".to_owned(), "jit".to_owned()]),
            Err(CliError::Usage(_))
        ));
        // Default is the VM.
        assert_eq!(parse_options(&["x.mc".to_owned()]).unwrap().engine, Engine::Vm);
    }

    #[test]
    fn trace_record_then_analyze_round_trips() {
        let prog = write_temp("record", PROG);
        let ftrace = std::env::temp_dir().join("foray_cli_test_record.ftrace");
        let ftrace_s = ftrace.to_string_lossy().into_owned();
        let record: Vec<String> = ["trace", "record", prog.as_str(), "-o", &ftrace_s]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(run(&record).is_ok());
        let file = minic_trace::TraceFile::open(&ftrace).unwrap();
        assert!(file.record_count() > 0);
        // The file-backed analysis equals the in-RAM pipeline, sharded or
        // not (stdout capture is per-process, so compare models directly).
        let in_ram = ForayGen::new().run_source(PROG).unwrap();
        for sharded in [false, true] {
            let config = AnalyzerConfig { shards: 2, ..AnalyzerConfig::default() };
            let analysis = if sharded {
                foray::analyze_sharded_source(&file, config).unwrap()
            } else {
                foray::analyze_source_with(&file, config).unwrap()
            };
            assert_eq!(analysis, in_ram.analysis, "sharded={sharded}");
            let model = ForayModel::extract(&analysis, &FilterConfig::default());
            assert_eq!(foray::codegen::emit(&model), in_ram.code, "sharded={sharded}");
        }
        let analyze: Vec<String> = ["trace", "analyze", ftrace_s.as_str(), "--sharded"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(run(&analyze).is_ok());
        std::fs::remove_file(&ftrace).ok();
    }

    #[test]
    fn trace_format_flag_selects_the_container_version() {
        let prog = write_temp("format_flag", PROG);
        for (flag, want) in
            [("v1", minic_trace::FormatVersion::V1), ("v2", minic_trace::FormatVersion::V2)]
        {
            let ftrace = std::env::temp_dir().join(format!("foray_cli_test_fmt_{flag}.ftrace"));
            let ftrace_s = ftrace.to_string_lossy().into_owned();
            let args: Vec<String> =
                ["trace", "record", prog.as_str(), "-o", &ftrace_s, "--trace-format", flag]
                    .iter()
                    .map(|s| s.to_string())
                    .collect();
            assert!(run(&args).is_ok(), "--trace-format {flag}");
            let file = minic_trace::TraceFile::open(&ftrace).unwrap();
            assert_eq!(file.version(), want, "--trace-format {flag}");
            // Both versions re-analyze to the same model.
            let in_ram = ForayGen::new().run_source(PROG).unwrap();
            assert_eq!(foray::analyze_source(&file).unwrap(), in_ram.analysis);
            std::fs::remove_file(&ftrace).ok();
        }
        // The default is v2; bad names are usage errors.
        assert_eq!(parse_options(&[]).unwrap().trace_format, minic_trace::FormatVersion::V2);
        assert!(matches!(
            parse_options(&["--trace-format".to_owned(), "v3".to_owned()]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn failed_recording_removes_the_partial_file() {
        // A program that dies mid-run (division by zero) must not leave a
        // footer-less .ftrace stub behind.
        let prog = write_temp(
            "record_crash",
            "int a[8];\nvoid main() { int i; int z; z = 0; for (i = 0; i < 8; i++) { a[i] = 1 / z; } }",
        );
        let ftrace = std::env::temp_dir().join("foray_cli_test_crash.ftrace");
        std::fs::remove_file(&ftrace).ok();
        let ftrace_s = ftrace.to_string_lossy().into_owned();
        let args: Vec<String> = ["trace", "record", prog.as_str(), "-o", &ftrace_s]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(matches!(run(&args), Err(CliError::Runtime(_))));
        assert!(!ftrace.exists(), "partial trace file must be removed on runtime error");
    }

    #[test]
    fn from_loop_seeks_and_rejects_unseekable_files() {
        let prog = write_temp("from_loop", PROG);
        let ftrace = std::env::temp_dir().join("foray_cli_test_from_loop.ftrace");
        let ftrace_s = ftrace.to_string_lossy().into_owned();
        let record: Vec<String> = ["trace", "record", prog.as_str(), "-o", &ftrace_s]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(run(&record).is_ok());
        // Seeking to the program's (only) loop works, sharded or not, and
        // sees the whole loop: the analysis equals the full replay.
        let file = minic_trace::TraceFile::open(&ftrace).unwrap();
        let full = foray::analyze_source(&file).unwrap();
        let seeked =
            foray::analyze_source(file.records_from_loop(minic::LoopId(0)).unwrap()).unwrap();
        assert_eq!(seeked, full);
        for extra in [None, Some("--sharded")] {
            let mut args = vec!["trace".to_owned(), "analyze".to_owned(), ftrace_s.clone()];
            args.extend(["--from-loop".to_owned(), "0".to_owned()]);
            args.extend(extra.map(str::to_owned));
            assert!(run(&args).is_ok(), "--from-loop 0 {extra:?}");
        }
        // A loop the trace never runs is a runtime error, not silence.
        let absent: Vec<String> = ["trace", "analyze", &ftrace_s, "--from-loop", "999"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(matches!(run(&absent), Err(CliError::Runtime(_))));
        std::fs::remove_file(&ftrace).ok();
        // v1 files have no index: --from-loop reports that, it does not scan.
        let v1: Vec<String> =
            ["trace", "record", prog.as_str(), "-o", &ftrace_s, "--trace-format", "v1"]
                .iter()
                .map(|s| s.to_string())
                .collect();
        assert!(run(&v1).is_ok());
        let seek_v1: Vec<String> = ["trace", "analyze", &ftrace_s, "--from-loop", "0"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let err = run(&seek_v1).unwrap_err();
        let CliError::Runtime(msg) = err else { panic!("want runtime error, got {err:?}") };
        assert!(msg.contains("checkpoint index"), "{msg}");
        std::fs::remove_file(&ftrace).ok();
    }

    #[test]
    fn workload_source_resolves() {
        let ftrace = std::env::temp_dir().join("foray_cli_test_workload.ftrace");
        let ftrace_s = ftrace.to_string_lossy().into_owned();
        let args: Vec<String> = ["trace", "record", "--workload", "adpcmc", "-o", &ftrace_s]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(run(&args).is_ok());
        assert!(minic_trace::TraceFile::open(&ftrace).unwrap().record_count() > 0);
        std::fs::remove_file(&ftrace).ok();
        // model also accepts --workload; unknown names are usage errors.
        assert!(run(&["model".to_owned(), "--workload".to_owned(), "adpcmc".to_owned()]).is_ok());
        assert!(matches!(
            run(&["model".to_owned(), "--workload".to_owned(), "nope".to_owned()]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn trace_subcommand_usage_errors() {
        let prog = write_temp("record_noout", PROG);
        // record without -o
        assert!(matches!(
            run(&["trace".to_owned(), "record".to_owned(), prog.clone()]),
            Err(CliError::Usage(_))
        ));
        // analyze without a file / with --workload / on a non-trace file
        assert!(matches!(
            run(&["trace".to_owned(), "analyze".to_owned()]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&[
                "trace".to_owned(),
                "analyze".to_owned(),
                "--workload".to_owned(),
                "fftc".to_owned()
            ]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&["trace".to_owned(), "analyze".to_owned(), prog]),
            Err(CliError::Runtime(_))
        ));
        // file + --workload together is ambiguous
        let prog2 = write_temp("ambiguous", PROG);
        assert!(matches!(
            run(&["model".to_owned(), prog2, "--workload".to_owned(), "fftc".to_owned()]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn trace_to_file_in_both_formats() {
        let path = write_temp("trace", PROG);
        for fmt in ["text", "binary", "framed"] {
            let out = std::env::temp_dir().join(format!("foray_cli_trace.{fmt}"));
            let out_s = out.to_string_lossy().into_owned();
            let args: Vec<String> = ["trace", path.as_str(), "--format", fmt, "-o", &out_s]
                .iter()
                .map(|s| s.to_string())
                .collect();
            assert!(run(&args).is_ok());
            assert!(std::fs::metadata(&out).unwrap().len() > 0);
        }
    }

    #[test]
    fn usage_errors() {
        assert!(matches!(run(&[]), Err(CliError::Usage(_))));
        assert!(matches!(run(&["model".to_owned()]), Err(CliError::Usage(_))));
        assert!(matches!(run(&["bogus".to_owned(), "x".to_owned()]), Err(CliError::Usage(_))));
        let path = write_temp("badflag", PROG);
        assert!(matches!(
            run(&["model".to_owned(), path, "--wat".to_owned()]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn compile_errors_are_reported() {
        let path = write_temp("broken", "void main() {");
        assert!(matches!(run(&["model".to_owned(), path]), Err(CliError::Compile(_))));
    }

    #[test]
    fn spm_command_runs() {
        let path = write_temp(
            "spm",
            "int t[64]; int big[4096];\nvoid main() {\n int i; int j;\n for (i = 0; i < 128; i++) {\n  for (j = 0; j < 64; j++) { big[j] += t[j]; }\n }\n}",
        );
        let args: Vec<String> =
            ["spm", path.as_str(), "--capacity", "1024"].iter().map(|s| s.to_string()).collect();
        assert!(run(&args).is_ok());
    }

    #[test]
    fn executable_model_flag() {
        let path = write_temp("exec", PROG);
        let args: Vec<String> =
            ["model", path.as_str(), "--executable"].iter().map(|s| s.to_string()).collect();
        assert!(run(&args).is_ok());
    }

    #[test]
    fn annotate_command_runs() {
        let path = write_temp("annotate", PROG);
        assert!(run(&["annotate".to_owned(), path]).is_ok());
    }

    #[test]
    fn dse_options_parse_with_defaults_and_overrides() {
        let defaults = parse_dse_options(&[]).unwrap();
        assert_eq!(defaults.workloads, vec!["all"]);
        assert_eq!(defaults.capacities, vec![256, 512, 1024, 2048, 4096, 8192]);
        assert_eq!(defaults.models.len(), foray_spm::energy::PRESET_NAMES.len());
        assert_eq!(defaults.jobs, 0);
        assert!(!defaults.check);
        let args: Vec<String> = [
            "--workloads",
            "fftc,adpcmc",
            "--capacities",
            "512,256",
            "--models",
            "small-spm",
            "--jobs",
            "3",
            "--check",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let opts = parse_dse_options(&args).unwrap();
        assert_eq!(opts.workloads, vec!["fftc", "adpcmc"]);
        assert_eq!(opts.capacities, vec![512, 256]);
        assert_eq!(opts.models, vec!["small-spm"]);
        assert_eq!(opts.jobs, 3);
        assert!(opts.check);
        assert!(matches!(
            parse_dse_options(&["--capacities".to_owned(), "abc".to_owned()]),
            Err(CliError::Usage(_))
        ));
        // dse takes no file argument.
        assert!(matches!(parse_dse_options(&["x.mc".to_owned()]), Err(CliError::Usage(_))));
    }

    #[test]
    fn energy_model_specs_resolve() {
        for name in foray_spm::energy::PRESET_NAMES {
            let (n, m) = parse_energy_model(name).unwrap();
            assert_eq!(&n, name);
            assert_eq!(m, foray_spm::EnergyModel::preset(name).unwrap());
        }
        let (n, m) = parse_energy_model("custom:3.0:0.2:512:0.15").unwrap();
        assert_eq!(n, "custom");
        assert_eq!(m.main_access_nj, 3.0);
        assert_eq!(m.spm_base_bytes, 512);
        assert!(matches!(parse_energy_model("nope"), Err(CliError::Usage(_))));
        assert!(matches!(parse_energy_model("custom:1:2"), Err(CliError::Usage(_))));
    }

    #[test]
    fn dse_command_runs_and_writes_json() {
        let json = std::env::temp_dir().join("foray_cli_test_dse.json");
        let json_s = json.to_string_lossy().into_owned();
        let args: Vec<String> = [
            "dse",
            "--workloads",
            "adpcmc",
            "--capacities",
            "256,1024",
            "--models",
            "small-spm,large-spm",
            "--jobs",
            "2",
            "--json",
            &json_s,
            "--check",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        assert!(run(&args).is_ok());
        let written = std::fs::read_to_string(&json).unwrap();
        assert!(written.contains("\"schema\": \"foray-dse/v1\""));
        assert!(run(&["dse".to_owned(), "--workloads".to_owned(), "nope".to_owned()])
            .is_err_and(|e| matches!(e, CliError::Usage(_))));
    }

    fn owned(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn serve_options_parse() {
        let o = parse_serve_options(&owned(&[
            "--socket",
            "/tmp/f.sock",
            "--workers",
            "3",
            "--queue",
            "9",
            "--cache",
            "7",
            "--spill",
            "/tmp/spill",
            "--jobs",
            "2",
        ]))
        .unwrap();
        assert_eq!(o.addr, foray_serve::ServeAddr::Unix("/tmp/f.sock".into()));
        assert_eq!((o.workers, o.queue, o.cache, o.jobs), (3, 9, 7, 2));
        assert_eq!(o.spill.as_deref(), Some("/tmp/spill"));
        let o = parse_serve_options(&owned(&["--tcp", "127.0.0.1:0"])).unwrap();
        assert_eq!(o.addr, foray_serve::ServeAddr::Tcp("127.0.0.1:0".into()));
        assert_eq!((o.workers, o.queue, o.cache), (1, 64, 128), "defaults");
        // Address is mandatory and exclusive.
        assert!(parse_serve_options(&[]).is_err_and(|e| matches!(e, CliError::Usage(_))));
        assert!(parse_serve_options(&owned(&["--socket", "/tmp/a", "--tcp", "h:1",]))
            .is_err_and(|e| matches!(e, CliError::Usage(_))));
        assert!(parse_serve_options(&owned(&["--workers"]))
            .is_err_and(|e| matches!(e, CliError::Usage(_))));
    }

    #[test]
    fn client_options_parse_and_build_specs() {
        let o = parse_client_options(&owned(&[
            "--socket",
            "/tmp/f.sock",
            "submit",
            "--workload",
            "fftc",
            "--scale",
            "2",
            "--kind",
            "report",
            "--sample",
            "every:4",
            "--engine",
            "tree",
            "--priority",
            "5",
            "--no-wait",
        ]))
        .unwrap();
        assert_eq!(o.action, "submit");
        let spec = client_job_spec(&o).unwrap();
        assert_eq!(spec.input, foray_serve::JobInput::Workload("fftc".to_owned()));
        assert_eq!(spec.kind, foray_serve::JobKind::Report);
        assert_eq!(spec.scale, 2);
        assert_eq!(spec.engine, Engine::Tree);
        assert_eq!(spec.priority, 5);
        assert!(o.no_wait);

        let o = parse_client_options(&owned(&[
            "--socket",
            "/tmp/f.sock",
            "wait",
            "j3",
            "--timeout-ms",
            "250",
        ]))
        .unwrap();
        assert_eq!((o.action.as_str(), o.arg.as_deref()), ("wait", Some("j3")));
        assert_eq!(o.timeout_ms, Some(250));

        // Exactly one input for submit.
        let o = parse_client_options(&owned(&[
            "--socket",
            "/tmp/f.sock",
            "submit",
            "--workload",
            "fftc",
            "--trace",
            "/t.ftrace",
        ]))
        .unwrap();
        assert!(client_job_spec(&o).is_err_and(|e| matches!(e, CliError::Usage(_))));
        let o = parse_client_options(&owned(&["--socket", "/tmp/f.sock", "submit"])).unwrap();
        assert!(client_job_spec(&o).is_err_and(|e| matches!(e, CliError::Usage(_))));

        // Missing action / out-of-range priority are usage errors.
        assert!(parse_client_options(&owned(&["--socket", "/tmp/f.sock"]))
            .is_err_and(|e| matches!(e, CliError::Usage(_))));
        assert!(parse_client_options(&owned(&[
            "--socket",
            "/tmp/f.sock",
            "submit",
            "--priority",
            "10",
        ]))
        .is_err_and(|e| matches!(e, CliError::Usage(_))));
    }

    #[test]
    fn client_end_to_end_over_unix_socket() {
        let sock = std::env::temp_dir()
            .join(format!("foray_cli_serve_{}.sock", std::process::id()))
            .to_string_lossy()
            .into_owned();
        let addr = foray_serve::ServeAddr::Unix(sock.clone().into());
        let server = foray_serve::Server::new(foray_serve::ServeConfig {
            workers: 1,
            ..foray_serve::ServeConfig::default()
        });
        let srv_addr = addr.clone();
        let daemon = std::thread::spawn(move || foray_serve::serve(server, &srv_addr));
        // The listener needs a beat to bind before the client connects.
        let mut tries = 0;
        while !std::path::Path::new(&sock).exists() && tries < 100 {
            std::thread::sleep(std::time::Duration::from_millis(10));
            tries += 1;
        }
        let path = write_temp("client_e2e", PROG);
        let submit = owned(&["client", "--socket", &sock, "submit", &path]);
        run(&submit).unwrap();
        run(&submit).unwrap(); // warm: served from cache, same bytes
        run(&owned(&["client", "--socket", &sock, "ping"])).unwrap();
        run(&owned(&["client", "--socket", &sock, "stats"])).unwrap();
        run(&owned(&["client", "--socket", &sock, "shutdown"])).unwrap();
        daemon.join().unwrap().unwrap();
        assert!(!std::path::Path::new(&sock).exists(), "socket file cleaned up");
    }
}
