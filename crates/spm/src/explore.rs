//! Design-space exploration: which buffers go into the scratch pad —
//! step 3 of the paper's Phase II call-out ("explore and select buffers to
//! be placed in SPM").
//!
//! Selecting at most one buffering level per reference under a capacity
//! budget is a multiple-choice knapsack. Both an exact dynamic program and
//! the classical density-greedy heuristic are provided; the
//! `spm_dse` bench compares them (an ablation called out in `DESIGN.md`).

use crate::candidate::BufferCandidate;
use crate::energy::EnergyModel;
use std::collections::BTreeMap;

/// A chosen configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Selection {
    /// Indices into the candidate slice, at most one per reference.
    pub chosen: Vec<usize>,
    /// Bytes of SPM used.
    pub used_bytes: u32,
    /// Energy saved vs an all-main-memory baseline, in nJ.
    pub savings_nj: f64,
}

impl Selection {
    fn empty() -> Selection {
        Selection { chosen: Vec::new(), used_bytes: 0, savings_nj: 0.0 }
    }
}

/// The multiple-choice knapsack dynamic program, solved **once** up to a
/// byte budget and reusable for every capacity at or below it.
///
/// `dp[w]` depends only on the previous group's `dp[w']` for `w' ≤ w`, so a
/// single table built at the budget answers *all* smaller capacities by
/// backtracking from a different column — the cached core of the
/// design-space-exploration capacity axis ([`crate::dse`]). Per-candidate
/// savings under the plan's energy model are evaluated once at build time
/// instead of once per DP cell.
///
/// Complexity: `O(budget × candidates)` to build, `O(groups)` per
/// [`CapacityPlan::select`].
#[derive(Debug, Clone)]
pub struct CapacityPlan {
    /// Largest capacity (bytes) the table covers.
    budget: u32,
    /// Candidate sizes, indexed like the source slice.
    sizes: Vec<u32>,
    /// Per-candidate savings under the plan's energy model.
    savings: Vec<f64>,
    /// Per reference group: the candidate picked at each capacity column
    /// (`-1` = skip the group), in ascending `ref_idx` order.
    picks: Vec<Vec<i32>>,
}

impl CapacityPlan {
    /// Solves the DP for `candidates` under `energy`, up to `budget` bytes.
    pub fn build(
        candidates: &[BufferCandidate],
        energy: &EnergyModel,
        budget: u32,
    ) -> CapacityPlan {
        let cap = budget as usize;
        let sizes: Vec<u32> = candidates.iter().map(|c| c.size_bytes).collect();
        let savings: Vec<f64> = candidates.iter().map(|c| c.savings_nj(energy)).collect();
        // Group candidate indices by reference (choose ≤ 1 per group).
        let mut groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (i, c) in candidates.iter().enumerate() {
            groups.entry(c.ref_idx).or_default().push(i);
        }
        // dp[w] = best savings using ≤ w bytes; picks[g][w] = candidate
        // chosen for group g at that column.
        let mut dp = vec![0.0f64; cap + 1];
        let mut picks: Vec<Vec<i32>> = Vec::with_capacity(groups.len());
        for group in groups.values() {
            let prev = dp.clone();
            let mut pick_row = vec![-1i32; cap + 1];
            for w in 0..=cap {
                // Default: skip this group.
                dp[w] = prev[w];
                for &ci in group {
                    let size = sizes[ci] as usize;
                    if size <= w {
                        let v = prev[w - size] + savings[ci];
                        if v > dp[w] {
                            dp[w] = v;
                            pick_row[w] = ci as i32;
                        }
                    }
                }
            }
            picks.push(pick_row);
        }
        CapacityPlan { budget, sizes, savings, picks }
    }

    /// The byte budget the plan was built for.
    pub fn budget(&self) -> u32 {
        self.budget
    }

    /// Backtracks the optimal selection for `capacity` bytes (clamped to
    /// the plan's budget) — identical to solving the DP at that capacity
    /// directly.
    pub fn select(&self, capacity: u32) -> Selection {
        let mut w = capacity.min(self.budget) as usize;
        let mut chosen = Vec::new();
        for row in self.picks.iter().rev() {
            let ci = row[w];
            if ci >= 0 {
                chosen.push(ci as usize);
                w -= self.sizes[ci as usize] as usize;
            }
        }
        chosen.reverse();
        let used_bytes = chosen.iter().map(|&i| self.sizes[i]).sum();
        // `Sum for f64` has identity -0.0; `+ 0.0` keeps empty selections
        // from reporting "-0" savings.
        let savings_nj = chosen.iter().map(|&i| self.savings[i]).sum::<f64>() + 0.0;
        Selection { chosen, used_bytes, savings_nj }
    }
}

/// Exact multiple-choice knapsack via dynamic programming over capacity.
///
/// Complexity `O(capacity × candidates)`; capacities are SPM-sized
/// (≤ 64 KiB), so this is fast in practice. Sweeping several capacities?
/// Build one [`CapacityPlan`] at the largest and [`CapacityPlan::select`]
/// each — that is what [`sweep`] does.
pub fn select_exact(
    candidates: &[BufferCandidate],
    energy: &EnergyModel,
    capacity: u32,
) -> Selection {
    CapacityPlan::build(candidates, energy, capacity).select(capacity)
}

/// Greedy selection by savings density (nJ per byte), one level per
/// reference, first-fit under the capacity.
pub fn select_greedy(
    candidates: &[BufferCandidate],
    energy: &EnergyModel,
    capacity: u32,
) -> Selection {
    let mut order: Vec<usize> =
        (0..candidates.len()).filter(|&i| candidates[i].savings_nj(energy) > 0.0).collect();
    order.sort_by(|&a, &b| {
        let da = candidates[a].savings_nj(energy) / candidates[a].size_bytes.max(1) as f64;
        let db = candidates[b].savings_nj(energy) / candidates[b].size_bytes.max(1) as f64;
        db.partial_cmp(&da).unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut sel = Selection::empty();
    let mut used_refs = std::collections::HashSet::new();
    for i in order {
        let c = &candidates[i];
        if used_refs.contains(&c.ref_idx) {
            continue;
        }
        if sel.used_bytes + c.size_bytes <= capacity {
            sel.used_bytes += c.size_bytes;
            sel.savings_nj += c.savings_nj(energy);
            sel.chosen.push(i);
            used_refs.insert(c.ref_idx);
        }
    }
    sel.chosen.sort_unstable();
    sel
}

/// Sweeps SPM capacities, producing the curve of (capacity, savings) — the
/// paper's "several buffer configurations are suggested and one of them is
/// selected during design space exploration".
///
/// The dynamic program is solved **once** at the largest capacity and each
/// grid point is answered by backtracking ([`CapacityPlan`]); the old
/// per-capacity re-solve is gone. Results are identical to calling
/// [`select_exact`] per capacity.
pub fn sweep(
    candidates: &[BufferCandidate],
    energy: &EnergyModel,
    capacities: &[u32],
) -> Vec<(u32, Selection)> {
    let budget = capacities.iter().copied().max().unwrap_or(0);
    let plan = CapacityPlan::build(candidates, energy, budget);
    capacities.iter().map(|&cap| (cap, plan.select(cap))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn candidate(
        ref_idx: usize,
        level: u32,
        size: u32,
        accesses: u64,
        fills: u64,
    ) -> BufferCandidate {
        BufferCandidate {
            ref_idx,
            array: format!("A{ref_idx}"),
            level,
            size_bytes: size,
            spm_accesses: accesses,
            fill_elems: fills,
            writeback_elems: 0,
            activations: 1,
            elem_bytes: 4,
        }
    }

    #[test]
    fn exact_respects_capacity_and_groups() {
        let energy = EnergyModel::default();
        let cands = vec![
            candidate(0, 1, 100, 10_000, 100), // ref 0, small
            candidate(0, 2, 400, 10_000, 25),  // ref 0, bigger, better
            candidate(1, 1, 300, 5_000, 50),
        ];
        let sel = select_exact(&cands, &energy, 700);
        // Can take ref0/level2 (400) + ref1 (300) = 700.
        assert_eq!(sel.chosen, vec![1, 2]);
        assert_eq!(sel.used_bytes, 700);
        // Tight capacity: must pick the best combination that fits.
        let sel = select_exact(&cands, &energy, 450);
        assert!(sel.used_bytes <= 450);
        let per_ref: std::collections::HashSet<usize> =
            sel.chosen.iter().map(|&i| cands[i].ref_idx).collect();
        assert_eq!(per_ref.len(), sel.chosen.len(), "at most one level per reference");
    }

    #[test]
    fn exact_beats_or_equals_greedy() {
        let energy = EnergyModel::default();
        // Adversarial sizes: greedy-by-density walks into a corner.
        let cands = vec![
            candidate(0, 1, 60, 3_000, 30),
            candidate(1, 1, 60, 3_000, 30),
            candidate(2, 1, 100, 4_600, 46),
        ];
        for cap in [100u32, 120, 160, 220] {
            let e = select_exact(&cands, &energy, cap);
            let g = select_greedy(&cands, &energy, cap);
            assert!(
                e.savings_nj >= g.savings_nj - 1e-9,
                "cap {cap}: exact {} < greedy {}",
                e.savings_nj,
                g.savings_nj
            );
        }
    }

    #[test]
    fn zero_capacity_selects_nothing() {
        let energy = EnergyModel::default();
        let cands = vec![candidate(0, 1, 100, 1_000, 10)];
        let sel = select_exact(&cands, &energy, 0);
        assert!(sel.chosen.is_empty());
        assert_eq!(sel.savings_nj, 0.0);
    }

    #[test]
    fn empty_selection_savings_are_positive_zero() {
        // `Sum for f64` folds from -0.0; an empty selection must still
        // report "0", not "-0", in every rendered report.
        let sel = select_exact(&[], &EnergyModel::default(), 256);
        assert!(sel.chosen.is_empty());
        assert_eq!(sel.savings_nj.to_bits(), 0.0f64.to_bits(), "got -0.0");
    }

    #[test]
    fn negative_savings_candidates_are_never_chosen() {
        let energy = EnergyModel::default();
        // Moves more data than it serves.
        let cands = vec![candidate(0, 1, 100, 10, 1_000)];
        assert!(cands[0].savings_nj(&energy) < 0.0);
        let sel = select_exact(&cands, &energy, 1_000);
        assert!(sel.chosen.is_empty());
        let sel = select_greedy(&cands, &energy, 1_000);
        assert!(sel.chosen.is_empty());
    }

    #[test]
    fn one_plan_answers_every_capacity_exactly() {
        // Backtracking a shared budget-sized table must equal re-solving
        // the DP at each capacity — the cached-sweep correctness contract.
        let energy = EnergyModel::default();
        let cands = vec![
            candidate(0, 1, 60, 3_000, 30),
            candidate(0, 2, 240, 3_600, 9),
            candidate(1, 1, 60, 3_000, 30),
            candidate(2, 1, 100, 4_600, 46),
            candidate(3, 1, 500, 9_000, 125),
        ];
        let plan = CapacityPlan::build(&cands, &energy, 1024);
        assert_eq!(plan.budget(), 1024);
        for cap in [0u32, 59, 60, 100, 120, 160, 220, 400, 640, 1024] {
            let direct = select_exact(&cands, &energy, cap);
            let cached = plan.select(cap);
            assert_eq!(cached, direct, "capacity {cap}");
        }
        // Above-budget capacities clamp to the budget column.
        assert_eq!(plan.select(4096), plan.select(1024));
    }

    #[test]
    fn sweep_matches_per_capacity_exact_solves() {
        let energy = EnergyModel::default();
        let cands = vec![
            candidate(0, 1, 128, 4_000, 32),
            candidate(1, 1, 256, 6_000, 64),
            candidate(2, 1, 512, 9_000, 128),
        ];
        let caps = [64u32, 128, 300, 512, 1024];
        let curve = sweep(&cands, &energy, &caps);
        for (cap, sel) in curve {
            assert_eq!(sel, select_exact(&cands, &energy, cap), "capacity {cap}");
        }
    }

    #[test]
    fn sweep_is_monotone() {
        let energy = EnergyModel::default();
        let cands = vec![
            candidate(0, 1, 128, 4_000, 32),
            candidate(1, 1, 256, 6_000, 64),
            candidate(2, 1, 512, 9_000, 128),
        ];
        let curve = sweep(&cands, &energy, &[128, 256, 512, 1024]);
        for pair in curve.windows(2) {
            assert!(pair[1].1.savings_nj >= pair[0].1.savings_nj - 1e-9);
        }
    }
}
