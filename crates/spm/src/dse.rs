//! Parallel SPM design-space exploration: capacities × energy models ×
//! workloads.
//!
//! The paper's Phase II ends with "several buffer configurations are
//! suggested and one of them is selected during design space exploration".
//! This module scales that step into a full DSE sweep (the ImaGen-style
//! direction from `PAPERS.md`): an [`SpmDesignSpace`] names the three axes,
//! [`SpmDesignSpace::explore`] fans the work across the deterministic batch
//! pool ([`foray::map_ordered`]), and the resulting [`DseResult`] carries
//! every design point plus its (capacity, savings) Pareto front, rendered
//! as an aligned text table or machine-readable JSON (`foray-dse/v1`).
//!
//! Work sharing across the axes:
//!
//! * each **workload** is profiled and model-extracted once
//!   ([`foray::analyze_batch`]);
//! * buffer candidates are enumerated **once per workload** and shared by
//!   every energy model and capacity ([`DseStats::enumerations`] proves
//!   it);
//! * each **(workload, model)** pair solves one knapsack table
//!   ([`CapacityPlan`]) at the largest capacity; every grid point is a
//!   backtrack, not a re-solve.
//!
//! Results are **deterministic in the worker count**: the pool returns
//! job-order results, so `explore(1)` and `explore(N)` render byte-identical
//! reports.
//!
//! # Examples
//!
//! ```
//! # fn main() -> Result<(), foray_spm::dse::DseError> {
//! use foray::BatchJob;
//! use foray_spm::dse::SpmDesignSpace;
//!
//! let space = SpmDesignSpace::new()
//!     .capacities(&[256, 1024, 4096])
//!     .preset_models()
//!     .workload(BatchJob::new(
//!         "rescan",
//!         "int table[256]; int acc[1024];
//!          void main() {
//!              int i; int j;
//!              for (i = 0; i < 128; i++) {
//!                  for (j = 0; j < 256; j++) { acc[j] = table[j]; }
//!              }
//!          }",
//!     ));
//! let result = space.explore(2)?;
//! assert_eq!(result.stats.enumerations, 1); // one workload, one enumeration
//! assert!(result.front().iter().any(|p| p.selection.savings_nj > 0.0));
//! result.check().expect("front is non-empty and monotone");
//! # Ok(())
//! # }
//! ```

use crate::candidate::{enumerate, BufferCandidate};
use crate::energy::EnergyModel;
use crate::explore::{CapacityPlan, Selection};
use foray::{BatchJob, ForayModel, PipelineError};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// The three axes of an SPM design-space exploration.
#[derive(Debug, Clone, Default)]
pub struct SpmDesignSpace {
    /// SPM capacity grid in bytes (normalized to ascending unique values
    /// by [`SpmDesignSpace::explore`]).
    pub capacities: Vec<u32>,
    /// Named energy models — presets ([`EnergyModel::presets`]) and/or
    /// user-supplied models.
    pub models: Vec<(String, EnergyModel)>,
    /// Workload programs, as batch jobs for the shared pool.
    pub workloads: Vec<BatchJob>,
}

impl SpmDesignSpace {
    /// An empty design space; populate it with the builder methods.
    pub fn new() -> SpmDesignSpace {
        SpmDesignSpace::default()
    }

    /// Sets the capacity grid (bytes).
    pub fn capacities(mut self, capacities: &[u32]) -> SpmDesignSpace {
        self.capacities = capacities.to_vec();
        self
    }

    /// Adds one named energy model (e.g. a user-calibrated technology
    /// point).
    pub fn model(mut self, name: impl Into<String>, model: EnergyModel) -> SpmDesignSpace {
        self.models.push((name.into(), model));
        self
    }

    /// Adds every built-in preset ([`EnergyModel::presets`]).
    pub fn preset_models(mut self) -> SpmDesignSpace {
        self.models.extend(EnergyModel::presets());
        self
    }

    /// Adds one workload.
    pub fn workload(mut self, job: BatchJob) -> SpmDesignSpace {
        self.workloads.push(job);
        self
    }

    /// Adds many workloads.
    pub fn workloads(mut self, jobs: impl IntoIterator<Item = BatchJob>) -> SpmDesignSpace {
        self.workloads.extend(jobs);
        self
    }

    /// Explores the full space on `workers` pool threads (`0` =
    /// auto-detect, see [`foray::resolve_shards`]).
    ///
    /// Points come back workload-major, then model, then ascending
    /// capacity, and are identical for every worker count.
    ///
    /// # Errors
    ///
    /// [`DseError::EmptyAxis`] if an axis has no entries;
    /// [`DseError::Workload`] if a workload fails to compile or run.
    pub fn explore(&self, workers: usize) -> Result<DseResult, DseError> {
        if self.capacities.is_empty() {
            return Err(DseError::EmptyAxis("capacities"));
        }
        if self.models.is_empty() {
            return Err(DseError::EmptyAxis("models"));
        }
        if self.workloads.is_empty() {
            return Err(DseError::EmptyAxis("workloads"));
        }
        let mut capacities = self.capacities.clone();
        capacities.sort_unstable();
        capacities.dedup();
        let budget = *capacities.last().expect("grid is non-empty");

        // Stage 1: profile and extract one FORAY model per workload, across
        // the shared batch pool.
        let outputs = foray::analyze_batch(&self.workloads, workers);
        let mut models: Vec<ForayModel> = Vec::with_capacity(outputs.len());
        for (job, out) in self.workloads.iter().zip(outputs) {
            match out {
                Ok(o) => models.push(o.model),
                Err(error) => return Err(DseError::Workload { name: job.name.clone(), error }),
            }
        }

        // Stage 2: enumerate buffer candidates once per workload. The
        // model and capacity axes reuse these sets; the counter feeds
        // `DseStats::enumerations` so tests can pin the sharing.
        let enumerations = AtomicU64::new(0);
        let candidate_sets: Vec<Vec<BufferCandidate>> =
            foray::map_ordered(&models, workers, |_, model| {
                enumerations.fetch_add(1, Ordering::Relaxed);
                enumerate(model)
            });

        // Stage 3: one (workload, model) job per pair — solve the knapsack
        // table once at the budget, backtrack every capacity.
        let pairs: Vec<(usize, usize)> = (0..self.workloads.len())
            .flat_map(|w| (0..self.models.len()).map(move |m| (w, m)))
            .collect();
        let plans = AtomicU64::new(0);
        let per_pair: Vec<Vec<DsePoint>> = foray::map_ordered(&pairs, workers, |_, &(w, m)| {
            let (model_name, energy) = &self.models[m];
            plans.fetch_add(1, Ordering::Relaxed);
            let plan = CapacityPlan::build(&candidate_sets[w], energy, budget);
            let baseline_nj = energy.main_nj(models[w].covered_accesses());
            capacities
                .iter()
                .map(|&capacity| DsePoint {
                    workload: self.workloads[w].name.clone(),
                    model: model_name.clone(),
                    capacity,
                    selection: plan.select(capacity),
                    baseline_nj,
                    candidates: candidate_sets[w].len(),
                    pareto: false,
                })
                .collect()
        });
        let mut points: Vec<DsePoint> = per_pair.into_iter().flatten().collect();

        // Mark each (workload, model) curve's Pareto members.
        for chunk in points.chunks_mut(capacities.len()) {
            for i in pareto_front(chunk) {
                chunk[i].pareto = true;
            }
        }

        let stats = DseStats {
            workloads: self.workloads.len(),
            models: self.models.len(),
            capacities: capacities.len(),
            enumerations: enumerations.load(Ordering::Relaxed),
            plans: plans.load(Ordering::Relaxed),
        };
        Ok(DseResult {
            capacities,
            models: self.models.iter().map(|(n, _)| n.clone()).collect(),
            workloads: self.workloads.iter().map(|j| j.name.clone()).collect(),
            points,
            stats,
        })
    }
}

/// One explored design point.
#[derive(Debug, Clone, PartialEq)]
pub struct DsePoint {
    /// Workload name (the batch job's label).
    pub workload: String,
    /// Energy-model name.
    pub model: String,
    /// SPM capacity in bytes.
    pub capacity: u32,
    /// The optimal buffer configuration at this point.
    pub selection: Selection,
    /// All-main-memory energy of the workload's model under this energy
    /// model, in nJ.
    pub baseline_nj: f64,
    /// Number of buffer candidates enumerated for the workload.
    pub candidates: usize,
    /// Whether the point is on its (workload, model) Pareto front.
    pub pareto: bool,
}

impl DsePoint {
    /// Savings as a percentage of the all-main-memory baseline.
    pub fn saved_pct(&self) -> f64 {
        if self.baseline_nj <= 0.0 {
            0.0
        } else {
            100.0 * self.selection.savings_nj / self.baseline_nj
        }
    }
}

/// Work counters proving what the exploration shared.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DseStats {
    /// Workloads explored.
    pub workloads: usize,
    /// Energy models explored.
    pub models: usize,
    /// Capacity grid points (after normalization).
    pub capacities: usize,
    /// Candidate enumerations executed — equals `workloads`, never
    /// `workloads × models × capacities`.
    pub enumerations: u64,
    /// Knapsack tables solved — equals `workloads × models`, never
    /// `× capacities`.
    pub plans: u64,
}

/// Everything [`SpmDesignSpace::explore`] produces.
#[derive(Debug, Clone)]
pub struct DseResult {
    /// Normalized (ascending, unique) capacity grid.
    pub capacities: Vec<u32>,
    /// Energy-model names, in exploration order.
    pub models: Vec<String>,
    /// Workload names, in exploration order.
    pub workloads: Vec<String>,
    /// All design points: workload-major, then model, then ascending
    /// capacity.
    pub points: Vec<DsePoint>,
    /// Work counters.
    pub stats: DseStats,
}

/// Indices of the (capacity, savings) Pareto front of one curve.
///
/// A point is dominated when another point has capacity ≤ and savings ≥
/// with at least one strict; dominated points are pruned. Exact duplicates
/// keep their first occurrence.
pub fn pareto_front(points: &[DsePoint]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..points.len()).collect();
    order.sort_by(|&a, &b| {
        points[a]
            .capacity
            .cmp(&points[b].capacity)
            .then_with(|| {
                points[b]
                    .selection
                    .savings_nj
                    .partial_cmp(&points[a].selection.savings_nj)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .then(a.cmp(&b))
    });
    let mut front = Vec::new();
    let mut best = f64::NEG_INFINITY;
    for i in order {
        let s = points[i].selection.savings_nj;
        if s > best {
            front.push(i);
            best = s;
        }
    }
    front.sort_unstable();
    front
}

impl DseResult {
    /// The combined Pareto front, ranked by savings (descending; ties go to
    /// the smaller capacity, then exploration order).
    pub fn front(&self) -> Vec<&DsePoint> {
        let mut f: Vec<&DsePoint> = self.points.iter().filter(|p| p.pareto).collect();
        f.sort_by(|a, b| {
            b.selection
                .savings_nj
                .partial_cmp(&a.selection.savings_nj)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.capacity.cmp(&b.capacity))
        });
        f
    }

    /// The points of one (workload, model) capacity curve.
    pub fn curve(&self, workload: &str, model: &str) -> Vec<&DsePoint> {
        self.points.iter().filter(|p| p.workload == workload && p.model == model).collect()
    }

    /// CI invariants: every (workload, model) curve has a non-empty Pareto
    /// front and savings non-decreasing in capacity.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first violated invariant.
    pub fn check(&self) -> Result<(), String> {
        if self.points.is_empty() {
            return Err("exploration produced no design points".to_owned());
        }
        for chunk in self.points.chunks(self.capacities.len()) {
            let ctx = format!("{}/{}", chunk[0].workload, chunk[0].model);
            if !chunk.iter().any(|p| p.pareto) {
                return Err(format!("{ctx}: empty Pareto front"));
            }
            for pair in chunk.windows(2) {
                if pair[1].selection.savings_nj < pair[0].selection.savings_nj - 1e-9 {
                    return Err(format!(
                        "{ctx}: savings not monotone in capacity ({} B -> {:.3} nJ, {} B -> {:.3} nJ)",
                        pair[0].capacity,
                        pair[0].selection.savings_nj,
                        pair[1].capacity,
                        pair[1].selection.savings_nj,
                    ));
                }
            }
        }
        Ok(())
    }

    /// Renders the full report as an aligned text table (the
    /// `foray-bench` table style) plus the ranked Pareto front.
    pub fn render_text(&self) -> String {
        let headers = ["workload", "model", "capacity", "buffers", "used", "savings nJ", "saved"];
        let rows: Vec<Vec<String>> = self
            .points
            .iter()
            .map(|p| {
                vec![
                    format!("{}{}", if p.pareto { "*" } else { " " }, p.workload),
                    p.model.clone(),
                    p.capacity.to_string(),
                    p.selection.chosen.len().to_string(),
                    p.selection.used_bytes.to_string(),
                    format!("{:.1}", p.selection.savings_nj),
                    format!("{:.1}%", p.saved_pct()),
                ]
            })
            .collect();
        let mut out = String::new();
        out.push_str(&format!(
            "SPM design-space exploration: {} workloads x {} models x {} capacities ({} points, {} enumerations, {} plans)\n\n",
            self.stats.workloads,
            self.stats.models,
            self.stats.capacities,
            self.points.len(),
            self.stats.enumerations,
            self.stats.plans,
        ));
        out.push_str(&foray::report::render_table(&headers, &rows));
        out.push_str("\nPareto front (* above; ranked by savings):\n");
        for (rank, p) in self.front().iter().enumerate() {
            out.push_str(&format!(
                "{:>3}. {}/{} @ {} B -> {:.1} nJ saved ({:.1}% of baseline, {} buffers)\n",
                rank + 1,
                p.workload,
                p.model,
                p.capacity,
                p.selection.savings_nj,
                p.saved_pct(),
                p.selection.chosen.len(),
            ));
        }
        out
    }

    /// Serializes the result as `foray-dse/v1` JSON (hand-rolled — the
    /// workspace builds offline, without serde).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"foray-dse/v1\",\n");
        out.push_str(&format!(
            "  \"capacities\": [{}],\n",
            self.capacities.iter().map(|c| c.to_string()).collect::<Vec<_>>().join(", ")
        ));
        out.push_str(&format!("  \"models\": [{}],\n", json_str_list(&self.models)));
        out.push_str(&format!("  \"workloads\": [{}],\n", json_str_list(&self.workloads)));
        out.push_str(&format!(
            "  \"stats\": {{\"workloads\": {}, \"models\": {}, \"capacities\": {}, \"enumerations\": {}, \"plans\": {}}},\n",
            self.stats.workloads,
            self.stats.models,
            self.stats.capacities,
            self.stats.enumerations,
            self.stats.plans,
        ));
        let point_json = |p: &DsePoint| {
            format!(
                "{{\"workload\": {}, \"model\": {}, \"capacity\": {}, \"buffers\": {}, \"used_bytes\": {}, \"savings_nj\": {}, \"baseline_nj\": {}, \"candidates\": {}, \"pareto\": {}}}",
                json_str(&p.workload),
                json_str(&p.model),
                p.capacity,
                p.selection.chosen.len(),
                p.selection.used_bytes,
                json_f64(p.selection.savings_nj),
                json_f64(p.baseline_nj),
                p.candidates,
                p.pareto,
            )
        };
        out.push_str("  \"points\": [\n");
        let body: Vec<String> =
            self.points.iter().map(|p| format!("    {}", point_json(p))).collect();
        out.push_str(&body.join(",\n"));
        out.push_str("\n  ],\n");
        out.push_str("  \"front\": [\n");
        let front: Vec<String> =
            self.front().iter().map(|p| format!("    {}", point_json(p))).collect();
        out.push_str(&front.join(",\n"));
        out.push_str("\n  ]\n}\n");
        out
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_str_list(items: &[String]) -> String {
    items.iter().map(|s| json_str(s)).collect::<Vec<_>>().join(", ")
}

/// JSON has no NaN/Infinity; energy sums are finite by construction, but
/// clamp defensively rather than emit invalid JSON.
fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_owned()
    }
}

/// Design-space exploration failure.
#[derive(Debug)]
pub enum DseError {
    /// An axis of the design space has no entries.
    EmptyAxis(&'static str),
    /// A workload failed to compile or run; carries the job's name.
    Workload {
        /// The failing batch job's label.
        name: String,
        /// The underlying pipeline failure.
        error: PipelineError,
    },
}

impl fmt::Display for DseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DseError::EmptyAxis(axis) => write!(f, "design space has no {axis}"),
            DseError::Workload { name, error } => write!(f, "workload `{name}`: {error}"),
        }
    }
}

impl std::error::Error for DseError {}

#[cfg(test)]
mod tests {
    use super::*;

    /// Heavy inner reuse: a good SPM customer.
    const RESCAN: &str = "int table[256]; int acc[1024];
        void main() {
            int i; int j;
            for (i = 0; i < 96; i++) {
                for (j = 0; j < 256; j++) { acc[j] = table[j]; }
            }
        }";

    /// Pure streaming: no reuse, no candidates, zero-savings points.
    const STREAM: &str = "int a[2048];
        void main() {
            int i;
            for (i = 0; i < 2048; i++) { a[i] = i; }
        }";

    fn space() -> SpmDesignSpace {
        SpmDesignSpace::new()
            .capacities(&[4096, 256, 1024, 256]) // unsorted + duplicate on purpose
            .model("small-spm", EnergyModel::preset("small-spm").unwrap())
            .model("large-spm", EnergyModel::preset("large-spm").unwrap())
            .workloads([BatchJob::new("rescan", RESCAN), BatchJob::new("stream", STREAM)])
    }

    #[test]
    fn explore_shares_enumeration_and_plans_across_the_grid() {
        let result = space().explore(2).expect("explores");
        assert_eq!(result.capacities, vec![256, 1024, 4096], "grid is normalized");
        assert_eq!(result.points.len(), 2 * 2 * 3);
        assert_eq!(result.stats.enumerations, 2, "once per workload, not per (model, capacity)");
        assert_eq!(result.stats.plans, 4, "once per (workload, model), not per capacity");
        result.check().expect("invariants hold");
        // Point order: workload-major, model, ascending capacity.
        assert_eq!(result.points[0].workload, "rescan");
        assert_eq!(result.points[0].model, "small-spm");
        assert_eq!(result.points[0].capacity, 256);
        assert_eq!(result.points[3].model, "large-spm");
        assert_eq!(result.points[6].workload, "stream");
        // The reuse-heavy workload saves energy; the stream saves nothing.
        assert!(result.curve("rescan", "small-spm").last().unwrap().selection.savings_nj > 0.0);
        for p in result.curve("stream", "small-spm") {
            assert_eq!(p.selection.savings_nj, 0.0);
            assert_eq!(p.candidates, 0);
        }
    }

    #[test]
    fn empty_axes_are_rejected() {
        let err = SpmDesignSpace::new().explore(1).unwrap_err();
        assert!(matches!(err, DseError::EmptyAxis("capacities")), "{err}");
        let err = SpmDesignSpace::new().capacities(&[256]).explore(1).unwrap_err();
        assert!(matches!(err, DseError::EmptyAxis("models")), "{err}");
        let err = SpmDesignSpace::new().capacities(&[256]).preset_models().explore(1).unwrap_err();
        assert!(matches!(err, DseError::EmptyAxis("workloads")), "{err}");
    }

    #[test]
    fn workload_failures_carry_the_job_name() {
        let err = SpmDesignSpace::new()
            .capacities(&[256])
            .preset_models()
            .workload(BatchJob::new("broken", "void main() {"))
            .explore(1)
            .unwrap_err();
        match err {
            DseError::Workload { name, .. } => assert_eq!(name, "broken"),
            other => panic!("wrong error: {other}"),
        }
    }

    fn fixture_point(capacity: u32, savings_nj: f64) -> DsePoint {
        DsePoint {
            workload: "w".to_owned(),
            model: "m".to_owned(),
            capacity,
            selection: Selection { chosen: Vec::new(), used_bytes: 0, savings_nj },
            baseline_nj: 100.0,
            candidates: 0,
            pareto: false,
        }
    }

    #[test]
    fn pareto_front_drops_dominated_points() {
        // (512, 5.0) dominates (512, 3.0) [same capacity, less savings] and
        // (1024, 5.0) [more capacity, same savings]; (256, 1.0) and
        // (2048, 9.0) survive as the cheap and rich ends of the front.
        let points = vec![
            fixture_point(256, 1.0),
            fixture_point(512, 3.0),
            fixture_point(512, 5.0),
            fixture_point(1024, 5.0),
            fixture_point(2048, 9.0),
        ];
        assert_eq!(pareto_front(&points), vec![0, 2, 4]);
        // A flat curve keeps only its cheapest point.
        let flat = vec![fixture_point(256, 0.0), fixture_point(512, 0.0)];
        assert_eq!(pareto_front(&flat), vec![0]);
        assert!(pareto_front(&[]).is_empty());
    }

    #[test]
    fn json_report_is_wellformed_enough_to_grep() {
        let result = space().explore(0).expect("explores");
        let json = result.to_json();
        assert!(json.contains("\"schema\": \"foray-dse/v1\""));
        assert!(json.contains("\"capacities\": [256, 1024, 4096]"));
        assert!(json.contains("\"pareto\": true"));
        assert_eq!(
            json.matches("\"workload\":").count(),
            result.points.len() + result.front().len()
        );
        // Balanced braces/brackets (cheap structural sanity without a parser).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn text_report_lists_every_point_and_the_ranked_front() {
        let result = space().explore(1).expect("explores");
        let text = result.render_text();
        assert!(text.contains("2 workloads x 2 models x 3 capacities"));
        assert!(text.contains("workload"));
        assert!(text.contains("Pareto front"));
        assert!(text.contains("*rescan"), "front members are starred:\n{text}");
        let rank1 = text.lines().find(|l| l.trim_start().starts_with("1.")).expect("ranked list");
        assert!(rank1.contains("rescan"), "best point is the reuse-heavy workload: {rank1}");
    }
}
