//! Code transformation — step 4 of the paper's Phase II call-out ("modify
//! source code to reflect buffer configurations").
//!
//! Rewrites the FORAY model so selected references go through scratch-pad
//! buffers, inserting the fill (and writeback) copy loops at the right
//! nesting level. The output is the "transformed FORAY model code" of the
//! paper's Fig. 3, which a designer back-annotates into the legacy source
//! in Phase III.

use crate::candidate::BufferCandidate;
use foray::codegen::iter_name;
use foray::{ForayModel, ModelRef};
use std::fmt::Write as _;

/// Renders the buffered FORAY model.
///
/// Selected references index their buffer with the inner-iterator part of
/// their affine expression (re-based so the buffer starts at offset 0);
/// unselected references keep their original form.
pub fn emit_buffered(
    model: &ForayModel,
    candidates: &[BufferCandidate],
    chosen: &[usize],
) -> String {
    let mut out = String::new();
    let selected: Vec<&BufferCandidate> = chosen.iter().map(|&i| &candidates[i]).collect();
    // Buffer declarations.
    for (bi, c) in selected.iter().enumerate() {
        let _ = writeln!(
            out,
            "char SPM{bi}[{}]; // {} level {} buffer, reuse x{:.1}",
            c.size_bytes,
            c.array,
            c.level,
            c.reuse_factor()
        );
    }
    if !selected.is_empty() {
        out.push('\n');
    }
    // Emit each selected reference's nest with its fill loop; then the
    // untouched remainder of the model.
    for (bi, c) in selected.iter().enumerate() {
        let r = &model.refs[c.ref_idx];
        emit_buffered_nest(&mut out, model, r, c, bi);
        out.push('\n');
    }
    let untouched: Vec<usize> =
        (0..model.refs.len()).filter(|i| !selected.iter().any(|c| c.ref_idx == *i)).collect();
    if !untouched.is_empty() {
        let _ = writeln!(out, "// references left in main memory:");
        let mut rest = ForayModel::default();
        for i in untouched {
            let r = model.refs[i].clone();
            for n in &r.node_path {
                rest.loops.insert(*n, model.loops[n].clone());
            }
            rest.refs.push(r);
        }
        out.push_str(&foray::codegen::emit(&rest));
    }
    out
}

fn emit_buffered_nest(
    out: &mut String,
    model: &ForayModel,
    r: &ModelRef,
    c: &BufferCandidate,
    buffer_index: usize,
) {
    // Outer loops: levels N down to level+1. node_path is innermost-first.
    let outer: Vec<_> = r.node_path.iter().rev().take((r.nest - c.level) as usize).collect();
    let inner: Vec<_> = r.node_path.iter().rev().skip((r.nest - c.level) as usize).collect();
    let mut indent = 0;
    for n in &outer {
        let l = &model.loops[*n];
        let name = iter_name(l.loop_id);
        indent_to(out, indent);
        let _ = writeln!(out, "for (int {name}=0; {name}<{}; {name}++) {{", l.trip);
        indent += 1;
    }
    // Fill loop at the activation boundary.
    indent_to(out, indent);
    let _ = writeln!(
        out,
        "spm_fill(SPM{buffer_index}, {} /* activation base */, {}); // {} elems from {}",
        activation_base(r, c),
        c.size_bytes,
        c.size_bytes / c.elem_bytes.max(1),
        c.array,
    );
    // Inner loops.
    for n in &inner {
        let l = &model.loops[*n];
        let name = iter_name(l.loop_id);
        indent_to(out, indent);
        let _ = writeln!(out, "for (int {name}=0; {name}<{}; {name}++) {{", l.trip);
        indent += 1;
    }
    indent_to(out, indent);
    let _ = writeln!(
        out,
        "SPM{buffer_index}[{}]; // was {}[{}]",
        buffer_expr(r, c),
        r.array_name(),
        foray::codegen::index_expr(r)
    );
    if c.writeback_elems > 0 {
        // Writeback sits with the fill at the activation boundary.
        indent_to(out, (r.nest - c.level) as usize);
        let _ = writeln!(
            out,
            "// spm_writeback(SPM{buffer_index}, ..., {}) after the inner nest",
            c.size_bytes
        );
    }
    for i in (0..indent).rev() {
        indent_to(out, i);
        out.push_str("}\n");
    }
}

/// The part of the affine expression covered by the buffer, re-based to
/// start at 0 (negative-stride terms shifted by their span).
fn buffer_expr(r: &ModelRef, c: &BufferCandidate) -> String {
    let mut parts = Vec::new();
    let mut rebase: i64 = 0;
    for t in &r.terms {
        if t.level <= c.level {
            if t.coeff < 0 {
                rebase += -t.coeff; // shifted by |c|*(trip-1) conceptually
            }
            parts.push(format!("{}*{}", t.coeff, iter_name(t.loop_id)));
        }
    }
    let mut s = if rebase > 0 { format!("{rebase}") } else { "0".to_owned() };
    for p in parts {
        let _ = write!(s, " + {p}");
    }
    s
}

/// The main-memory base address expression of one activation: the constant
/// plus the outer-iterator terms.
fn activation_base(r: &ModelRef, c: &BufferCandidate) -> String {
    let mut s = r.constant.to_string();
    for t in &r.terms {
        if t.level > c.level {
            let _ = write!(s, " + {}*{}", t.coeff, iter_name(t.loop_id));
        }
    }
    if r.is_partial() {
        let _ = write!(s, " /* + runtime base */");
    }
    s
}

fn indent_to(out: &mut String, n: usize) {
    for _ in 0..n {
        out.push_str("    ");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidate::enumerate;
    use foray::{analyze, FilterConfig};
    use minic::CheckpointKind::{BodyBegin as BB, BodyEnd as BE, LoopBegin as LB};
    use minic_trace::{AccessKind, Record};

    fn rescan_model() -> ForayModel {
        let mut t = Vec::new();
        t.push(Record::checkpoint(0, LB));
        for _j in 0..32u32 {
            t.push(Record::checkpoint(0, BB));
            t.push(Record::checkpoint(1, LB));
            for i in 0..16u32 {
                t.push(Record::checkpoint(1, BB));
                t.push(Record::access(0x400000, 0x1000 + 4 * i, AccessKind::Read));
                t.push(Record::checkpoint(1, BE));
            }
            t.push(Record::checkpoint(0, BE));
        }
        ForayModel::extract(&analyze(&t), &FilterConfig::default())
    }

    #[test]
    fn buffered_emission_shape() {
        let model = rescan_model();
        let cands = enumerate(&model);
        assert_eq!(cands.len(), 1);
        let code = emit_buffered(&model, &cands, &[0]);
        assert!(code.contains("char SPM0[64];"), "{code}");
        assert!(code.contains("spm_fill(SPM0"), "{code}");
        assert!(code.contains("SPM0[0 + 4*i3]; // was A400000[4096 + 4*i3]"), "{code}");
        // Whole nest buffered at level 2: no outer loop before the fill.
        assert!(code.trim_start().starts_with("char SPM0"), "{code}");
    }

    #[test]
    fn unselected_references_remain() {
        let model = rescan_model();
        let cands = enumerate(&model);
        let code = emit_buffered(&model, &cands, &[]);
        assert!(code.contains("references left in main memory"), "{code}");
        assert!(code.contains("A400000"), "{code}");
        assert!(!code.contains("SPM0["), "{code}");
    }
}
