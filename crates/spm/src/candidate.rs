//! Data-reuse analysis over FORAY models — the analysis step of the
//! paper's Phase II (its Fig. 3 call-out, steps 1–2, in the style of the
//! paper's ref \[5\], Issenin et al., DATE 2004).
//!
//! For every model reference and every loop level `L` of its nest, a
//! *buffer candidate* captures "hold everything the innermost `L` loops
//! touch in the scratch pad, refill once per iteration of loop `L+1`". The
//! affine expression gives the buffer size and fill traffic analytically;
//! the trip counts give the activation counts.

use crate::energy::EnergyModel;
use foray::{ForayModel, ModelRef};

/// One (reference, level) buffering option.
#[derive(Debug, Clone, PartialEq)]
pub struct BufferCandidate {
    /// Index of the reference in the model's `refs`.
    pub ref_idx: usize,
    /// Array name (diagnostic).
    pub array: String,
    /// Buffer covers iterators `1..=level`.
    pub level: u32,
    /// Buffer size in bytes (affine span of the covered iterators).
    pub size_bytes: u32,
    /// Accesses served from the SPM over the whole run (= executions).
    pub spm_accesses: u64,
    /// Words copied from main memory over the whole run (fills), in
    /// element units.
    pub fill_elems: u64,
    /// Words copied back (only for written references).
    pub writeback_elems: u64,
    /// How often the buffer is (re)filled.
    pub activations: u64,
    /// Estimated element width in bytes.
    pub elem_bytes: u32,
}

impl BufferCandidate {
    /// Reuse factor: SPM hits per element moved from main memory.
    pub fn reuse_factor(&self) -> f64 {
        let moved = self.fill_elems + self.writeback_elems;
        if moved == 0 {
            0.0
        } else {
            self.spm_accesses as f64 / moved as f64
        }
    }

    /// Energy saved by adopting this buffer (can be negative).
    ///
    /// Without the buffer every access goes to main memory; with it, every
    /// access hits the SPM and each fill/writeback element costs one main
    /// access plus one SPM access.
    pub fn savings_nj(&self, energy: &EnergyModel) -> f64 {
        let spm = energy.spm_access_nj(self.size_bytes);
        let without = energy.main_nj(self.spm_accesses);
        let moved = self.fill_elems + self.writeback_elems;
        let with = self.spm_accesses as f64 * spm + energy.main_nj(moved) + moved as f64 * spm;
        without - with
    }
}

/// Estimated element width: the gcd of the coefficients, clamped to
/// 1/2/4 bytes (byte-strided references are char-like, 4-strided are
/// int-like).
fn elem_bytes(r: &ModelRef) -> u32 {
    let mut g: u64 = 0;
    for t in &r.terms {
        g = gcd(g, t.coeff.unsigned_abs());
    }
    match g {
        0 | 1 => 1,
        2..=3 => 2,
        _ => 4,
    }
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Enumerates buffer candidates for one reference.
///
/// Levels run from 1 (innermost loop only) to the reference's window `M`
/// (outer levels beyond the window have unpredictable constants, so a
/// buffer spanning them cannot be preloaded — exactly the paper's point
/// about partial expressions still enabling analysis "on a limited number
/// of loops").
pub fn candidates_for(ref_idx: usize, r: &ModelRef, model: &ForayModel) -> Vec<BufferCandidate> {
    let elem = elem_bytes(r);
    let mut out = Vec::new();
    // Trip counts innermost-first along the reference's nest.
    let trips: Vec<u64> = r.node_path.iter().map(|n| model.loops[n].trip.max(1)).collect();
    let total_execs = r.execs;
    for level in 1..=r.window.min(r.nest) {
        // Affine span of iterators 1..=level.
        let mut span: u64 = 0;
        for t in &r.terms {
            if t.level <= level {
                let trip = trips.get(t.level as usize - 1).copied().unwrap_or(1);
                span += t.coeff.unsigned_abs() * (trip.saturating_sub(1));
            }
        }
        let size_bytes = span + elem as u64;
        if size_bytes > u32::MAX as u64 {
            continue;
        }
        // One activation per iteration of the loops outside `level`.
        let inner_iters: u64 = trips.iter().take(level as usize).product();
        let activations = (total_execs / inner_iters.max(1)).max(1);
        let fill_elems = activations * (size_bytes / elem as u64).max(1);
        let writeback_elems = if r.writes > 0 { fill_elems } else { 0 };
        out.push(BufferCandidate {
            ref_idx,
            array: r.array_name(),
            level,
            size_bytes: size_bytes as u32,
            spm_accesses: total_execs,
            fill_elems,
            writeback_elems,
            activations,
            elem_bytes: elem,
        });
    }
    out
}

/// Enumerates candidates for every reference of a model, dropping options
/// that move more data than they serve (reuse factor ≤ 1).
pub fn enumerate(model: &ForayModel) -> Vec<BufferCandidate> {
    let mut out = Vec::new();
    for (i, r) in model.refs.iter().enumerate() {
        out.extend(candidates_for(i, r, model).into_iter().filter(|c| c.reuse_factor() > 1.0));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use foray::{analyze, FilterConfig};
    use minic::CheckpointKind::{BodyBegin as BB, BodyEnd as BE, LoopBegin as LB};
    use minic_trace::{AccessKind, Record};

    /// Classic reuse nest: the inner row is rescanned by the outer loop.
    /// a[4*i] with i in 0..16, re-read for each of 32 outer iterations.
    fn rescan_model() -> ForayModel {
        let mut t = Vec::new();
        t.push(Record::checkpoint(0, LB));
        for _j in 0..32u32 {
            t.push(Record::checkpoint(0, BB));
            t.push(Record::checkpoint(1, LB));
            for i in 0..16u32 {
                t.push(Record::checkpoint(1, BB));
                t.push(Record::access(0x400000, 0x1000 + 4 * i, AccessKind::Read));
                t.push(Record::checkpoint(1, BE));
            }
            t.push(Record::checkpoint(0, BE));
        }
        ForayModel::extract(&analyze(&t), &FilterConfig::default())
    }

    #[test]
    fn rescan_candidate_has_high_reuse() {
        let model = rescan_model();
        assert_eq!(model.ref_count(), 1);
        let cands = enumerate(&model);
        // Level 1 buffer: 61 bytes span + 4 → 64 bytes... but the outer
        // coefficient is 0, so the level-1 buffer is refilled 32 times
        // while the data never changes. Reuse = 512 / (32*16) = 1 → the
        // naive level-1 option is filtered; level 2 (whole nest) keeps
        // reuse 512/16 = 32.
        assert_eq!(cands.len(), 1, "{cands:#?}");
        let c = &cands[0];
        assert_eq!(c.level, 2);
        assert_eq!(c.size_bytes, 64);
        assert_eq!(c.spm_accesses, 512);
        assert_eq!(c.activations, 1);
        assert_eq!(c.fill_elems, 16);
        assert!((c.reuse_factor() - 32.0).abs() < 1e-9);
        assert!(c.savings_nj(&EnergyModel::default()) > 0.0);
    }

    #[test]
    fn streaming_reference_has_no_worthwhile_candidate() {
        // Pure streaming: every address touched once.
        let mut t = vec![Record::checkpoint(0, LB)];
        for i in 0..64u32 {
            t.push(Record::checkpoint(0, BB));
            t.push(Record::access(0x400000, 0x1000 + 4 * i, AccessKind::Read));
            t.push(Record::checkpoint(0, BE));
        }
        let model = ForayModel::extract(&analyze(&t), &FilterConfig::default());
        assert!(enumerate(&model).is_empty(), "no reuse, no candidate");
    }

    #[test]
    fn written_references_pay_writeback() {
        let mut t = vec![Record::checkpoint(0, LB)];
        for _j in 0..32u32 {
            t.push(Record::checkpoint(0, BB));
            t.push(Record::checkpoint(1, LB));
            for i in 0..16u32 {
                t.push(Record::checkpoint(1, BB));
                t.push(Record::access(0x400000, 0x1000 + 4 * i, AccessKind::Write));
                t.push(Record::checkpoint(1, BE));
            }
            t.push(Record::checkpoint(0, BE));
        }
        let model = ForayModel::extract(&analyze(&t), &FilterConfig::default());
        let cands = enumerate(&model);
        assert!(!cands.is_empty());
        assert!(cands[0].writeback_elems > 0);
        let read_model = rescan_model();
        let read_cands = enumerate(&read_model);
        assert!(
            cands[0].savings_nj(&EnergyModel::default())
                < read_cands[0].savings_nj(&EnergyModel::default()),
            "writeback must cost energy"
        );
    }

    #[test]
    fn element_width_inference() {
        let model = rescan_model();
        let cands = enumerate(&model);
        assert_eq!(cands[0].elem_bytes, 4);
    }

    #[test]
    fn partial_window_limits_levels() {
        // Two-level nest with an unpredictable outer base: window = 1.
        let mut t = Vec::new();
        t.push(Record::checkpoint(0, LB));
        for base in [0x1000u32, 0x1790, 0x2004, 0x3500] {
            t.push(Record::checkpoint(0, BB));
            t.push(Record::checkpoint(1, LB));
            // Re-walk the same 16-element row 4 times per entry so the
            // level-covering buffers show reuse.
            for _rescan in 0..4 {
                t.push(Record::checkpoint(1, BB));
                t.push(Record::checkpoint(2, LB));
                for i in 0..16u32 {
                    t.push(Record::checkpoint(2, BB));
                    t.push(Record::access(0x400000, base + 4 * i, AccessKind::Read));
                    t.push(Record::checkpoint(2, BE));
                }
                t.push(Record::checkpoint(1, BE));
            }
            t.push(Record::checkpoint(0, BE));
        }
        let model = ForayModel::extract(&analyze(&t), &FilterConfig::default());
        assert_eq!(model.ref_count(), 1);
        let r = &model.refs[0];
        assert!(r.is_partial());
        assert_eq!(r.window, 2, "rescan level stays predictable, base level does not");
        let cands = enumerate(&model);
        assert!(!cands.is_empty());
        for c in &cands {
            assert!(c.level <= r.window, "candidates must respect the window");
        }
    }
}
