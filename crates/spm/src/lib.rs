//! # foray-spm — scratch-pad-memory optimization over FORAY models
//!
//! Phase II of the paper's design flow (its Fig. 3): take the FORAY model
//! produced by FORAY-GEN, analyze the data reuse of its affine references,
//! propose scratch-pad buffer configurations, explore the design space
//! under a capacity budget, and emit the transformed (buffered) model code.
//! The analysis style follows the paper's ref \[5\] (Issenin et al.,
//! DATE 2004); the energy assumptions follow its ref \[1\] (Banakar et al.,
//! CODES 2002).
//!
//! # Examples
//!
//! ```
//! # fn main() -> Result<(), foray::PipelineError> {
//! // A tiled copy with heavy inner reuse.
//! let out = foray::ForayGen::new().run_source(
//!     "int table[64]; int big[4096];
//!      void main() {
//!          int i; int j;
//!          for (i = 0; i < 4096; i++) { big[i] = i; }
//!          for (i = 0; i < 256; i++) {
//!              for (j = 0; j < 64; j++) { big[j] += table[j]; }
//!          }
//!      }")?;
//! let flow = foray_spm::SpmFlow::new(foray_spm::EnergyModel::default());
//! let report = flow.run(&out.model, 1024);
//! assert!(report.selection.savings_nj > 0.0);
//! assert!(report.code.contains("spm_fill"));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod candidate;
pub mod dse;
pub mod energy;
pub mod explore;
pub mod transform;

pub use candidate::{candidates_for, enumerate, BufferCandidate};
pub use dse::{DsePoint, DseResult, DseStats, SpmDesignSpace};
pub use energy::EnergyModel;
pub use explore::{select_exact, select_greedy, sweep, CapacityPlan, Selection};
pub use transform::emit_buffered;

use foray::ForayModel;

/// End-to-end Phase II driver.
#[derive(Debug, Clone, Default)]
pub struct SpmFlow {
    energy: EnergyModel,
}

/// Everything Phase II produces for one model and capacity.
#[derive(Debug, Clone)]
pub struct SpmReport {
    /// All enumerated buffer candidates (reuse factor > 1).
    pub candidates: Vec<BufferCandidate>,
    /// The chosen configuration.
    pub selection: Selection,
    /// Transformed FORAY model code.
    pub code: String,
    /// Energy of the all-main-memory baseline over the model's accesses.
    pub baseline_nj: f64,
}

impl SpmFlow {
    /// Creates a flow with an energy model.
    pub fn new(energy: EnergyModel) -> Self {
        SpmFlow { energy }
    }

    /// The energy model in use.
    pub fn energy(&self) -> &EnergyModel {
        &self.energy
    }

    /// Runs candidate enumeration, exact selection, and code emission for
    /// one SPM capacity (bytes).
    pub fn run(&self, model: &ForayModel, capacity: u32) -> SpmReport {
        let candidates = enumerate(model);
        let selection = select_exact(&candidates, &self.energy, capacity);
        let code = emit_buffered(model, &candidates, &selection.chosen);
        let baseline_nj = self.energy.main_nj(model.covered_accesses());
        SpmReport { candidates, selection, code, baseline_nj }
    }

    /// Sweeps several capacities (the paper's design-space exploration).
    pub fn sweep(&self, model: &ForayModel, capacities: &[u32]) -> Vec<(u32, Selection)> {
        let candidates = enumerate(model);
        explore::sweep(&candidates, &self.energy, capacities)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reuse_heavy_model() -> ForayModel {
        foray::ForayGen::new()
            .run_source(
                "int table[256]; int acc[1024];
                 void main() {
                     int i; int j;
                     for (i = 0; i < 128; i++) {
                         for (j = 0; j < 256; j++) { acc[j] = table[j]; }
                     }
                 }",
            )
            .expect("runs")
            .model
    }

    #[test]
    fn flow_produces_positive_savings_for_reuse() {
        let model = reuse_heavy_model();
        let report = SpmFlow::default().run(&model, 4096);
        assert!(!report.candidates.is_empty());
        assert!(report.selection.savings_nj > 0.0);
        assert!(report.selection.used_bytes <= 4096);
        assert!(report.baseline_nj > report.selection.savings_nj);
    }

    #[test]
    fn sweep_savings_grow_with_capacity() {
        let model = reuse_heavy_model();
        let curve = SpmFlow::default().sweep(&model, &[256, 512, 1024, 4096]);
        assert_eq!(curve.len(), 4);
        for pair in curve.windows(2) {
            assert!(pair[1].1.savings_nj >= pair[0].1.savings_nj - 1e-9);
        }
    }

    #[test]
    fn capacity_zero_changes_nothing() {
        let model = reuse_heavy_model();
        let report = SpmFlow::default().run(&model, 0);
        assert!(report.selection.chosen.is_empty());
        assert!(report.code.contains("references left in main memory"));
    }
}
