//! Energy model for scratch-pad vs main-memory accesses.
//!
//! Calibrated to the qualitative facts the paper's flow relies on (via its
//! ref \[1\], Banakar et al., CODES 2002): an on-chip SPM access costs a
//! fraction of a main-memory access, and SPM per-access energy grows
//! slowly (roughly logarithmically) with SPM size. Absolute numbers are
//! representative, not process-accurate — Phase II decisions depend only on
//! the ratios.

/// Per-access energy parameters, in nanojoules.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyModel {
    /// Main-memory (off-chip) access energy.
    pub main_access_nj: f64,
    /// SPM access energy at the reference size.
    pub spm_base_nj: f64,
    /// SPM size at which `spm_base_nj` holds, in bytes.
    pub spm_base_bytes: u32,
    /// Additional energy per doubling of SPM size (fraction of base).
    pub spm_size_slope: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        // ~16x main-memory vs small-SPM ratio, Banakar-flavoured.
        EnergyModel {
            main_access_nj: 3.2,
            spm_base_nj: 0.19,
            spm_base_bytes: 512,
            spm_size_slope: 0.18,
        }
    }
}

/// Names of the built-in presets, in [`EnergyModel::presets`] order.
pub const PRESET_NAMES: &[&str] = &["default", "small-spm", "medium-spm", "large-spm"];

impl EnergyModel {
    /// Looks up a built-in preset by name.
    ///
    /// Besides `"default"` (the [`Default`] parameters), three CACTI-style
    /// technology points are provided for design-space exploration. They
    /// share the off-chip access cost but differ in where the SPM
    /// access-energy curve is anchored: a small SPM macro is cheapest per
    /// access but its energy climbs steeply when oversized, while a large
    /// macro starts costlier and stays flat. Sweeping all three shows which
    /// capacity regime each workload's Pareto front lives in.
    ///
    /// # Examples
    ///
    /// ```
    /// use foray_spm::EnergyModel;
    /// let small = EnergyModel::preset("small-spm").unwrap();
    /// let large = EnergyModel::preset("large-spm").unwrap();
    /// assert!(small.spm_access_nj(256) < large.spm_access_nj(256));
    /// assert!(small.spm_access_nj(64 * 1024) > large.spm_access_nj(64 * 1024));
    /// assert!(EnergyModel::preset("nope").is_none());
    /// ```
    pub fn preset(name: &str) -> Option<EnergyModel> {
        match name {
            "default" => Some(EnergyModel::default()),
            "small-spm" => Some(EnergyModel {
                main_access_nj: 3.2,
                spm_base_nj: 0.11,
                spm_base_bytes: 256,
                spm_size_slope: 0.34,
            }),
            "medium-spm" => Some(EnergyModel {
                main_access_nj: 3.2,
                spm_base_nj: 0.19,
                spm_base_bytes: 1024,
                spm_size_slope: 0.16,
            }),
            "large-spm" => Some(EnergyModel {
                main_access_nj: 3.2,
                spm_base_nj: 0.27,
                spm_base_bytes: 4096,
                spm_size_slope: 0.07,
            }),
            _ => None,
        }
    }

    /// Every built-in preset as a named list — the standard model axis of
    /// an SPM design-space exploration.
    pub fn presets() -> Vec<(String, EnergyModel)> {
        PRESET_NAMES
            .iter()
            .map(|&n| (n.to_owned(), EnergyModel::preset(n).expect("preset names are built-in")))
            .collect()
    }

    /// Per-access SPM energy for an SPM of `size_bytes`.
    pub fn spm_access_nj(&self, size_bytes: u32) -> f64 {
        let size = size_bytes.max(1) as f64;
        let base = self.spm_base_bytes.max(1) as f64;
        let doublings = (size / base).log2().max(0.0);
        self.spm_base_nj * (1.0 + self.spm_size_slope * doublings)
    }

    /// Energy for `n` main-memory accesses.
    pub fn main_nj(&self, n: u64) -> f64 {
        self.main_access_nj * n as f64
    }

    /// Energy advantage of one SPM access over one main-memory access at a
    /// given SPM size (positive while SPM wins).
    pub fn advantage_nj(&self, size_bytes: u32) -> f64 {
        self.main_access_nj - self.spm_access_nj(size_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spm_is_cheaper_and_grows_with_size() {
        let m = EnergyModel::default();
        assert!(m.spm_access_nj(512) < m.main_access_nj);
        assert!(m.spm_access_nj(16 * 1024) > m.spm_access_nj(512));
        assert!(m.advantage_nj(512) > 0.0);
    }

    #[test]
    fn below_base_size_is_flat() {
        let m = EnergyModel::default();
        assert_eq!(m.spm_access_nj(64), m.spm_access_nj(512));
    }

    #[test]
    fn presets_cover_the_names_and_order_by_anchor_size() {
        let ps = EnergyModel::presets();
        assert_eq!(ps.len(), PRESET_NAMES.len());
        for ((name, model), &expect) in ps.iter().zip(PRESET_NAMES) {
            assert_eq!(name, expect);
            assert_eq!(model, &EnergyModel::preset(expect).unwrap());
            // Every preset keeps the SPM worthwhile at its anchor size.
            assert!(model.advantage_nj(model.spm_base_bytes) > 0.0, "{name} never wins");
        }
        assert_eq!(EnergyModel::preset("default").unwrap(), EnergyModel::default());
        let small = EnergyModel::preset("small-spm").unwrap();
        let medium = EnergyModel::preset("medium-spm").unwrap();
        let large = EnergyModel::preset("large-spm").unwrap();
        assert!(small.spm_base_bytes < medium.spm_base_bytes);
        assert!(medium.spm_base_bytes < large.spm_base_bytes);
        // The curves cross: small wins small, large wins large.
        assert!(small.spm_access_nj(256) < large.spm_access_nj(256));
        assert!(small.spm_access_nj(64 * 1024) > large.spm_access_nj(64 * 1024));
    }

    #[test]
    fn main_energy_is_linear() {
        let m = EnergyModel::default();
        assert!((m.main_nj(10) - 10.0 * m.main_access_nj).abs() < 1e-9);
    }
}
