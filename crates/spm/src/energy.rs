//! Energy model for scratch-pad vs main-memory accesses.
//!
//! Calibrated to the qualitative facts the paper's flow relies on (via its
//! ref \[1\], Banakar et al., CODES 2002): an on-chip SPM access costs a
//! fraction of a main-memory access, and SPM per-access energy grows
//! slowly (roughly logarithmically) with SPM size. Absolute numbers are
//! representative, not process-accurate — Phase II decisions depend only on
//! the ratios.

/// Per-access energy parameters, in nanojoules.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyModel {
    /// Main-memory (off-chip) access energy.
    pub main_access_nj: f64,
    /// SPM access energy at the reference size.
    pub spm_base_nj: f64,
    /// SPM size at which `spm_base_nj` holds, in bytes.
    pub spm_base_bytes: u32,
    /// Additional energy per doubling of SPM size (fraction of base).
    pub spm_size_slope: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        // ~16x main-memory vs small-SPM ratio, Banakar-flavoured.
        EnergyModel {
            main_access_nj: 3.2,
            spm_base_nj: 0.19,
            spm_base_bytes: 512,
            spm_size_slope: 0.18,
        }
    }
}

impl EnergyModel {
    /// Per-access SPM energy for an SPM of `size_bytes`.
    pub fn spm_access_nj(&self, size_bytes: u32) -> f64 {
        let size = size_bytes.max(1) as f64;
        let base = self.spm_base_bytes.max(1) as f64;
        let doublings = (size / base).log2().max(0.0);
        self.spm_base_nj * (1.0 + self.spm_size_slope * doublings)
    }

    /// Energy for `n` main-memory accesses.
    pub fn main_nj(&self, n: u64) -> f64 {
        self.main_access_nj * n as f64
    }

    /// Energy advantage of one SPM access over one main-memory access at a
    /// given SPM size (positive while SPM wins).
    pub fn advantage_nj(&self, size_bytes: u32) -> f64 {
        self.main_access_nj - self.spm_access_nj(size_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spm_is_cheaper_and_grows_with_size() {
        let m = EnergyModel::default();
        assert!(m.spm_access_nj(512) < m.main_access_nj);
        assert!(m.spm_access_nj(16 * 1024) > m.spm_access_nj(512));
        assert!(m.advantage_nj(512) > 0.0);
    }

    #[test]
    fn below_base_size_is_flat() {
        let m = EnergyModel::default();
        assert_eq!(m.spm_access_nj(64), m.spm_access_nj(512));
    }

    #[test]
    fn main_energy_is_linear() {
        let m = EnergyModel::default();
        assert!((m.main_nj(10) - 10.0 * m.main_access_nj).abs() < 1e-9);
    }
}
