//! The full design flow of the paper's Fig. 3: Phase I (FORAY-GEN) feeding
//! Phase II (scratch-pad-memory analysis, design-space exploration, and
//! code transformation) on the jpeg-style workload.
//!
//! ```text
//! cargo run --example spm_flow
//! ```

use foray_spm::{EnergyModel, SpmFlow};
use foray_workloads::{jpegc, Params};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Phase I: extract the FORAY model from the legacy-style program.
    let workload = jpegc::workload(Params::default());
    println!("Phase I: FORAY-GEN on `{}` ({})", workload.name, workload.description);
    let out = workload.run()?;
    println!(
        "  model: {} references over {} loops, covering {} of {} accesses\n",
        out.model.ref_count(),
        out.model.loop_count(),
        out.model.covered_accesses(),
        out.sim.accesses
    );

    // Phase II: reuse analysis + DSE over SPM capacities.
    let flow = SpmFlow::new(EnergyModel::default());
    println!("Phase II: design-space exploration");
    println!("{:>10} {:>12} {:>14} {:>10}", "SPM bytes", "buffers", "savings (nJ)", "used");
    let capacities = [256u32, 512, 1024, 2048, 4096, 8192, 16384];
    let curve = flow.sweep(&out.model, &capacities);
    for (cap, sel) in &curve {
        println!(
            "{:>10} {:>12} {:>14.1} {:>10}",
            cap,
            sel.chosen.len(),
            sel.savings_nj,
            sel.used_bytes
        );
    }

    // Pick the knee (first capacity achieving ≥ 90% of the max savings).
    let max = curve.last().map(|(_, s)| s.savings_nj).unwrap_or(0.0);
    let knee =
        curve.iter().find(|(_, s)| s.savings_nj >= 0.9 * max).map(|(c, _)| *c).unwrap_or(4096);
    println!("\nselected capacity: {knee} bytes (knee of the curve)");

    let report = flow.run(&out.model, knee);
    println!(
        "baseline energy {:.1} nJ, saved {:.1} nJ ({:.1}%)\n",
        report.baseline_nj,
        report.selection.savings_nj,
        100.0 * report.selection.savings_nj / report.baseline_nj.max(1e-9)
    );
    println!("== transformed FORAY model (Phase II output, head) ==");
    for line in report.code.lines().take(30) {
        println!("{line}");
    }
    println!(
        "...\n\nPhase III (manual back-annotation) maps these buffers into the legacy source."
    );
    Ok(())
}
