//! The paper's Fig. 1 → Fig. 2 transformation: two code excerpts from the
//! `jpeg` benchmark that existing static techniques cannot analyze, and the
//! FORAY models FORAY-GEN extracts for them.
//!
//! ```text
//! cargo run --example excerpts
//! ```

use foray::{FilterConfig, ForayGen};

/// First Fig. 1 excerpt: component/coefficient initialization through a
/// walking pointer.
const EXCERPT_1: &str = "int last_bitpos[192];
int *last_bitpos_ptr;
void main() {
    int ci; int coefi;
    last_bitpos_ptr = last_bitpos;
    for (ci = 0; ci < 3; ci++) {
        for (coefi = 0; coefi < 64; coefi++) {
            *last_bitpos_ptr++ = -1;
        }
    }
}";

/// Second Fig. 1 excerpt: row-pointer table filled inside a while/for
/// combination (`result[currow++] = workspace`).
const EXCERPT_2: &str = "int workspace[1024];
int *result[16];
int currow;
void main() {
    int i;
    currow = 0;
    while (currow < 16) {
        for (i = 4; i > 0; i--) {
            result[currow] = workspace;
            currow++;
        }
    }
}";

fn show(title: &str, src: &str, filter: FilterConfig) -> Result<(), foray::PipelineError> {
    println!("== {title} ==\n{src}\n");
    let out = ForayGen::new().filter(filter).run_source(src)?;
    println!("-- static view: none of this is in FORAY form --");
    let mut prog = minic::parse(src).expect("parses");
    minic::check(&mut prog).expect("checks");
    let static_view = foray_baseline::analyze_program(&prog);
    println!(
        "   canonical for loops: {} of {}, affine array sites: {}",
        static_view.canonical_loops.len(),
        static_view.total_loops,
        static_view.affine_sites.len()
    );
    println!("-- FORAY model extracted dynamically --\n{}", out.code);
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 192 writes over 192 locations: the default filter keeps it.
    show("Fig 1a: *last_bitpos_ptr++ = -1", EXCERPT_1, FilterConfig::default())?;
    // 16 writes over 16 locations: relax Nexec slightly (the paper's
    // figures show the unfiltered model).
    show(
        "Fig 1b: result[currow++] = workspace",
        EXCERPT_2,
        FilterConfig { n_exec: 16, n_loc: 10 },
    )?;
    println!("Both excerpts became pure for-loops over affine array references (cf. Fig 2).");
    Ok(())
}
