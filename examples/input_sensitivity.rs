//! Input-data sensitivity of the FORAY model — the paper's stated future
//! work ("our future work will study the interdependency of the FORAY
//! models on the input data set used for profiling").
//!
//! Profiles every workload under two different input sets and diffs the
//! extracted models: a reference is *stable* if its affine terms survive an
//! input change (constant-only drift still permits the same buffering
//! decision).
//!
//! ```text
//! cargo run --example input_sensitivity
//! ```

use foray_workloads::{all, input, Params};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:>8} {:>8} {:>10} {:>9} {:>9} {:>9} {:>10}",
        "bench", "matching", "const-only", "changed", "only-A", "only-B", "stability"
    );
    for workload in all(Params::default()) {
        let out_a = workload.run()?;

        // Second profile under shifted inputs of the same character.
        let mut alt = workload.clone();
        let n = alt.inputs.len();
        alt.inputs = match workload.name {
            "jpegc" | "susanc" => input::image(0xbeef, n, 1),
            _ => input::audio(0xbeef, n),
        };
        let out_b = alt.run()?;

        let diff = out_a.model.diff(&out_b.model);
        println!(
            "{:>8} {:>8} {:>10} {:>9} {:>9} {:>9} {:>9.1}%",
            workload.name,
            diff.matching,
            diff.constant_only,
            diff.changed,
            diff.only_left,
            diff.only_right,
            100.0 * diff.stability()
        );
    }
    println!("\nStability = fraction of references whose affine terms survive the input change.");
    Ok(())
}
