//! Quickstart: the paper's Fig. 4 worked example, end to end.
//!
//! Runs FORAY-GEN on the two-loop pointer-walking program of Fig. 4(a) and
//! prints the annotated source (Fig. 4(b)), the head of the trace in the
//! paper's format (Fig. 4(c)), and the extracted FORAY model (Fig. 4(d)).
//!
//! ```text
//! cargo run --example quickstart
//! ```

use foray::{FilterConfig, ForayGen};
use minic_trace::text;

const FIGURE_4A: &str = "char q[10000];
char *ptr;
void main() {
    int i;
    int t1 = 98;
    ptr = q;
    while (t1 < 100) {
        t1++;
        ptr += 100;
        for (i = 40; i > 37; i--) {
            *ptr++ = i * i % 256;
        }
    }
}";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Fig 4(a): original program ==\n{FIGURE_4A}\n");

    // Step 1: annotate (Fig 4(b)).
    let prog = minic::frontend(FIGURE_4A)?;
    println!("== Fig 4(b): annotated program ==\n{}", minic::pretty(&prog));

    // Step 2: profile; keep the trace to show Fig 4(c).
    let (_, records) = minic_sim::run(&prog, &minic_sim::SimConfig::default(), &[])?;
    println!("== Fig 4(c): trace file (first 24 records) ==");
    for r in records.iter().take(24) {
        println!("{}", text::format_record(r));
    }
    println!("... ({} records total)\n", records.len());

    // Steps 3-4 + emission. Fig 4 shows the unfiltered view, so relax the
    // thresholds below the example's 6 executions / 6 locations.
    let out = ForayGen::new().filter(FilterConfig { n_exec: 6, n_loc: 6 }).run_source(FIGURE_4A)?;
    println!("== Fig 4(d): FORAY model ==\n{}", out.code);

    let r = &out.model.refs[0];
    println!(
        "recovered expression: {}[{} + {}*inner + {}*outer], trips 3 and 2",
        r.array_name(),
        r.constant,
        r.terms[0].coeff,
        r.terms[1].coeff
    );
    assert_eq!(r.terms[0].coeff, 1, "inner loop walks bytes");
    assert_eq!(r.terms[1].coeff, 103, "outer loop advances 100 + 3 bytes");
    println!("\ncoefficients match the paper: 1*i_inner + 103*i_outer");
    Ok(())
}
