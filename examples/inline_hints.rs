//! The paper's Fig. 9: function-inlining hints.
//!
//! `foo` is called from two different loops with different offset
//! patterns. In the FORAY model the function appears inlined at both
//! contexts; FORAY-GEN reports that duplicating (specializing) `foo` would
//! let each access pattern be optimized separately.
//!
//! ```text
//! cargo run --example inline_hints
//! ```

use foray::ForayGen;

const FIGURE_9: &str = "int A[1000];
int foo(int offset) {
    int ret; int i;
    ret = 0;
    for (i = 0; i < 10; i++) { ret += A[i + offset]; }
    return ret;
}
void main() {
    int x; int y; int tmp;
    tmp = 0;
    for (x = 0; x < 10; x++) { tmp += foo(10 * x); }
    for (y = 0; y < 20; y++) { tmp += foo(2 * y); }
    print_int(tmp);
}";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Fig 9 program ==\n{FIGURE_9}\n");
    let out = ForayGen::new().run_source(FIGURE_9)?;

    println!("== FORAY model (foo appears once per calling context) ==\n{}", out.code);

    println!("== inlining hints ==");
    for h in &out.hints {
        println!(
            "function `{}` (loop {}) materialized in {} contexts: {}",
            h.function,
            h.loop_id,
            h.contexts.len(),
            h.context_paths.join(" | ")
        );
    }
    assert_eq!(out.hints.len(), 1, "foo should be the single hint");

    // The two contexts carry different outer strides: 40 bytes/iteration
    // under x (offset 10*x over ints) vs 8 under y (offset 2*y).
    let strides: Vec<i64> = out
        .model
        .refs
        .iter()
        .filter(|r| r.nest == 2)
        .filter_map(|r| r.terms.iter().find(|t| t.level == 2).map(|t| t.coeff))
        .collect();
    println!("\nouter strides per context: {strides:?} (bytes per outer iteration)");
    assert!(strides.contains(&40) && strides.contains(&8));
    println!("=> optimizing one copy of foo for both patterns would be suboptimal; duplicate it.");
    Ok(())
}
