//! The offline analysis mode: profile to a trace *file*, then read it back
//! and analyze — the workflow the paper describes before noting that
//! online analysis makes the "typically large" trace file unnecessary.
//!
//! Two file flavours are shown: the paper's Fig. 4(c) text format (human
//! readable, self-describing lines) and the framed `foray-trace/v1` binary
//! container (compact, versioned, zero-copy to decode) — and the replayed
//! analyses are identical to each other and to the online run.
//!
//! ```text
//! cargo run --example offline_trace
//! ```

use foray::{Analyzer, FilterConfig, ForayModel};
use minic_trace::text::{TextReader, TextWriter};
use minic_trace::{RecordSource as _, TraceFile, TraceSink as _, TraceWriter};
use std::io::{BufReader, BufWriter};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let src = "int hist[128]; int data[512];
        void main() {
            int i; int pass;
            for (i = 0; i < 512; i++) { data[i] = input(i); }
            pass = 0;
            while (pass < 8) {
                for (i = 0; i < 512; i++) { hist[i % 128] += data[i]; }
                pass++;
            }
        }";
    let inputs: Vec<i64> = (0..512).map(|i| (i * 37) % 256).collect();
    let prog = minic::frontend(src)?;
    let dir = std::env::temp_dir();

    // Step 2 (offline flavour A): profile into a text trace file.
    let text_path = dir.join("foray_offline_demo.trace");
    {
        let file = std::fs::File::create(&text_path)?;
        let mut writer = TextWriter::new(BufWriter::new(file));
        minic_sim::run_with_sink(&prog, &minic_sim::SimConfig::default(), &inputs, &mut writer)?;
        if let Some(e) = writer.io_error() {
            return Err(format!("trace write failed: {e}").into());
        }
    }

    // Step 2 (offline flavour B): the same profiling run into a framed
    // foray-trace/v1 file — streamed block by block, never in memory.
    let framed_path = dir.join("foray_offline_demo.ftrace");
    {
        let file = std::fs::File::create(&framed_path)?;
        let mut writer = TraceWriter::new(BufWriter::new(file));
        minic_sim::run_with_sink(&prog, &minic_sim::SimConfig::default(), &inputs, &mut writer)?;
        if let Some(e) = writer.io_error() {
            return Err(format!("trace write failed: {e}").into());
        }
        println!("recorded {} records", writer.records_written());
    }
    let text_size = std::fs::metadata(&text_path)?.len();
    let framed_size = std::fs::metadata(&framed_path)?.len();
    println!("text trace:   {} ({text_size} bytes)", text_path.display());
    println!("framed trace: {} ({framed_size} bytes)", framed_path.display());

    // Step 3 (offline): stream the text file back through the analyzer
    // without materializing it in memory.
    let mut analyzer = Analyzer::new();
    let reader = TextReader::new(BufReader::new(std::fs::File::open(&text_path)?));
    for rec in reader {
        analyzer.record(&rec?);
    }
    let from_text = analyzer.into_analysis();

    // Same step via the framed file: one bulk read, zero-copy decode, and
    // any RecordSource-aware entry point (sequential or sharded).
    let file = TraceFile::open(&framed_path)?;
    println!("replayed {} records from the framed file", file.record_count());
    let mut analyzer = Analyzer::new();
    (&file).stream_into(&mut analyzer)?;
    let from_framed = analyzer.into_analysis();
    assert_eq!(from_text, from_framed, "both file formats replay identically");
    let sharded = foray::analyze_sharded_source(&file, foray::AnalyzerConfig::default())?;
    assert_eq!(from_framed, sharded, "sharded replay is bit-identical too");

    let model = ForayModel::extract(&from_framed, &FilterConfig::default());
    println!("\nFORAY model from the trace file:\n{}", foray::codegen::emit(&model));

    // The data[i] scan is affine; hist[i % 128] is not (and is excluded).
    assert!(model.refs.iter().any(|r| !r.terms.is_empty()));
    std::fs::remove_file(&text_path).ok();
    std::fs::remove_file(&framed_path).ok();
    Ok(())
}
