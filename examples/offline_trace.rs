//! The offline analysis mode: profile to a trace *file* (the paper's
//! Fig. 4(c) text format), then read it back and analyze — the workflow the
//! paper describes before noting that online analysis makes the
//! "typically large" trace file unnecessary.
//!
//! ```text
//! cargo run --example offline_trace
//! ```

use foray::{Analyzer, FilterConfig, ForayModel};
use minic_trace::text::{TextReader, TextWriter};
use minic_trace::TraceSink as _;
use std::io::{BufReader, BufWriter};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let src = "int hist[128]; int data[512];
        void main() {
            int i; int pass;
            for (i = 0; i < 512; i++) { data[i] = input(i); }
            pass = 0;
            while (pass < 8) {
                for (i = 0; i < 512; i++) { hist[i % 128] += data[i]; }
                pass++;
            }
        }";
    let inputs: Vec<i64> = (0..512).map(|i| (i * 37) % 256).collect();

    // Step 2 (offline flavour): profile into a trace file on disk.
    let path = std::env::temp_dir().join("foray_offline_demo.trace");
    let prog = minic::frontend(src)?;
    {
        let file = std::fs::File::create(&path)?;
        let mut writer = TextWriter::new(BufWriter::new(file));
        minic_sim::run_with_sink(&prog, &minic_sim::SimConfig::default(), &inputs, &mut writer)?;
        writer.finish();
        if let Some(e) = writer.io_error() {
            return Err(format!("trace write failed: {e}").into());
        }
    }
    let size = std::fs::metadata(&path)?.len();
    println!("trace file: {} ({size} bytes)", path.display());

    // Step 3 (offline): stream the file back through the analyzer without
    // materializing it in memory.
    let mut analyzer = Analyzer::new();
    let reader = TextReader::new(BufReader::new(std::fs::File::open(&path)?));
    let mut records = 0u64;
    for rec in reader {
        analyzer.record(&rec?);
        records += 1;
    }
    println!("replayed {records} records");

    let analysis = analyzer.into_analysis();
    let model = ForayModel::extract(&analysis, &FilterConfig::default());
    println!("\nFORAY model from the trace file:\n{}", foray::codegen::emit(&model));

    // The data[i] scan is affine; hist[i % 128] is not (and is excluded).
    assert!(model.refs.iter().any(|r| !r.terms.is_empty()));
    std::fs::remove_file(&path).ok();
    Ok(())
}
