//! Design-space-exploration lock-down.
//!
//! `foray_spm::dse` promises three things this suite pins:
//!
//! * **Determinism in the worker count** — `explore(N)` renders
//!   byte-identical text and JSON reports for N ∈ {1, 2, auto}, on random
//!   capacity grids and model subsets (property test) and on the corpus;
//! * **Equivalence with the sequential path** — every explored point
//!   equals profiling the workload directly, enumerating once, and solving
//!   the knapsack at that capacity with `select_exact`;
//! * **Work sharing** — candidate enumeration runs once per workload and
//!   one knapsack plan per (workload, model), never per capacity;
//! * **Pareto semantics** — every pruned point is dominated by a front
//!   member, and every front is non-empty and monotone (`check()`).

use foray_spm::dse::{pareto_front, DsePoint, SpmDesignSpace};
use foray_spm::{enumerate, select_exact, EnergyModel};
use foray_workloads::{all, by_name, Params};
use proptest::prelude::*;

/// A small two-workload space to keep property-test cases cheap.
fn small_space(capacities: &[u32], models: &[(String, EnergyModel)]) -> SpmDesignSpace {
    let mut space = SpmDesignSpace::new().capacities(capacities).workloads(
        ["fftc", "adpcmc"].iter().map(|n| {
            by_name(n, Params::default())
                .expect("corpus workload exists")
                .batch_job(foray::ForayGen::new())
        }),
    );
    for (name, model) in models {
        space = space.model(name.clone(), model.clone());
    }
    space
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The satellite property: `explore` with jobs N is byte-identical to
    /// the sequential sweep for all N ∈ {1, 2, auto}, whatever the
    /// capacity grid and model subset.
    #[test]
    fn explore_is_byte_identical_across_job_counts(
        capacities in proptest::collection::vec(64u32..16_384, 1..5),
        preset in 0usize..4,
    ) {
        let preset_name = foray_spm::energy::PRESET_NAMES[preset];
        let models = vec![
            (preset_name.to_owned(), EnergyModel::preset(preset_name).unwrap()),
            ("default".to_owned(), EnergyModel::default()),
        ];
        let space = small_space(&capacities, &models);
        let sequential = space.explore(1).expect("sequential explore");
        let seq_text = sequential.render_text();
        let seq_json = sequential.to_json();
        for jobs in [2usize, 0] {
            let parallel = space.explore(jobs).expect("parallel explore");
            prop_assert_eq!(&parallel.render_text(), &seq_text, "jobs={}", jobs);
            prop_assert_eq!(&parallel.to_json(), &seq_json, "jobs={}", jobs);
        }
    }
}

#[test]
fn explored_points_match_direct_sequential_solves() {
    let capacities = [256u32, 1024, 4096];
    let models = EnergyModel::presets();
    let result = small_space(&capacities, &models).explore(0).expect("explores");
    for name in ["fftc", "adpcmc"] {
        let w = by_name(name, Params::default()).unwrap();
        let model = w.run().expect("workload runs").model;
        let cands = enumerate(&model);
        for (model_name, energy) in &models {
            let curve = result.curve(name, model_name);
            assert_eq!(curve.len(), capacities.len());
            for (point, &cap) in curve.iter().zip(&capacities) {
                assert_eq!(point.capacity, cap);
                let direct = select_exact(&cands, energy, cap);
                assert_eq!(
                    point.selection, direct,
                    "{name}/{model_name} @ {cap} B diverges from the sequential path"
                );
                assert_eq!(point.candidates, cands.len());
            }
        }
    }
}

#[test]
fn corpus_exploration_shares_work_and_passes_the_ci_invariants() {
    let result = foray_bench::dse_space(Params::default()).explore(0).expect("corpus explores");
    assert_eq!(
        result.workloads,
        vec!["jpegc", "lamec", "susanc", "fftc", "gsmc", "adpcmc", "histoc"]
    );
    assert_eq!(
        result.stats.enumerations,
        result.workloads.len() as u64,
        "enumeration must run once per workload"
    );
    assert_eq!(
        result.stats.plans,
        (result.workloads.len() * result.models.len()) as u64,
        "one knapsack plan per (workload, model), never per capacity"
    );
    result.check().expect("non-empty monotone Pareto fronts");
    // The front is worth reporting: at least one corpus point saves energy.
    let front = result.front();
    assert!(!front.is_empty());
    assert!(front[0].selection.savings_nj > 0.0, "best corpus point saves nothing");
    // Ranked: savings never increase down the list.
    for pair in front.windows(2) {
        assert!(pair[0].selection.savings_nj >= pair[1].selection.savings_nj - 1e-9);
    }
}

#[test]
fn every_pruned_point_is_dominated_by_a_front_member() {
    let result = small_space(&[256, 512, 1024, 2048, 4096, 8192], &EnergyModel::presets())
        .explore(2)
        .expect("explores");
    let dominates = |a: &DsePoint, b: &DsePoint| {
        a.capacity <= b.capacity
            && a.selection.savings_nj >= b.selection.savings_nj
            && (a.capacity < b.capacity || a.selection.savings_nj > b.selection.savings_nj)
    };
    for chunk in result.points.chunks(result.capacities.len()) {
        let front = pareto_front(chunk);
        for (i, p) in chunk.iter().enumerate() {
            assert_eq!(p.pareto, front.contains(&i), "pareto flag disagrees with extraction");
            if !p.pareto {
                assert!(
                    chunk.iter().enumerate().any(|(j, q)| {
                        // Duplicates keep their first occurrence; a pruned
                        // twin counts as dominated by the kept one.
                        (dominates(q, p)
                            || (j < i
                                && q.capacity == p.capacity
                                && q.selection.savings_nj == p.selection.savings_nj))
                            && front.contains(&j)
                    }),
                    "{}/{} @ {} B was pruned but nothing on the front dominates it",
                    p.workload,
                    p.model,
                    p.capacity
                );
            }
        }
    }
}

#[test]
fn scaled_corpus_still_explores_deterministically() {
    // Scale 2 exercises bigger traces through the same parallel path; the
    // report must stay independent of the worker count there too.
    let space = SpmDesignSpace::new()
        .capacities(&[512, 2048])
        .model("small-spm", EnergyModel::preset("small-spm").unwrap())
        .workloads(
            all(Params { scale: 2 })
                .into_iter()
                .take(2)
                .map(|w| w.batch_job(foray::ForayGen::new())),
        );
    let a = space.explore(1).expect("explores");
    let b = space.explore(0).expect("explores");
    assert_eq!(a.to_json(), b.to_json());
    a.check().expect("invariants hold at scale 2");
}
