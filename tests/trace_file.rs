//! File-backed trace pipeline lock-down.
//!
//! The `foray-trace/v1` container promises that a trace recorded to disk
//! and replayed through any reader produces **byte-identical** analysis to
//! the in-RAM record slice. This suite pins that promise on three fronts:
//!
//! * property tests: arbitrary record streams → `TraceWriter` (random
//!   block sizes) → `TraceFile` / `TraceReader` / raw `RecordReader` →
//!   identical records and identical `Analysis`;
//! * corruption: truncation at every structural boundary, bad magic,
//!   future versions, and flipped payload bytes are all rejected with
//!   typed errors, never mis-decoded;
//! * the workload corpus: profile once, write the trace file, re-analyze
//!   from the file sequentially and sharded (K ∈ {1, auto}) and require
//!   equality with the online in-RAM analysis — model code included — plus
//!   the `analyze_trace_files` batch fan-out.

use foray::{analyze, AnalyzerConfig, FilterConfig, ForayGen, ForayModel};
use minic::CheckpointKind::{BodyBegin, BodyEnd, LoopBegin};
use minic_trace::binary::RecordReader;
use minic_trace::file::{self, TraceReader, TraceWriter, HEADER_BYTES};
use minic_trace::{AccessKind, ReadError, Record, RecordSource, TraceFile, TraceSink};
use proptest::prelude::*;

/// Frames a record slice with an explicit block capacity.
fn frame(records: &[Record], block_bytes: usize) -> Vec<u8> {
    let mut w = TraceWriter::with_block_bytes(Vec::new(), block_bytes);
    for r in records {
        w.record(r);
    }
    w.finish();
    assert!(w.io_error().is_none());
    w.into_inner()
}

fn arb_record() -> impl Strategy<Value = Record> {
    prop_oneof![
        (0u32..64, 0usize..3).prop_map(|(l, k)| {
            let kind = [LoopBegin, BodyBegin, BodyEnd][k];
            Record::checkpoint(l, kind)
        }),
        (any::<u32>(), any::<u32>(), any::<bool>()).prop_map(|(i, a, w)| {
            Record::access(i, a, if w { AccessKind::Write } else { AccessKind::Read })
        }),
    ]
}

/// A structured trace (real loop nesting) so the replayed analyses have
/// meaningful loop trees and affine fits, not just record counts.
fn nest_trace(bodies: u32, refs: u32) -> Vec<Record> {
    let mut t = vec![Record::checkpoint(0, LoopBegin)];
    for i in 0..bodies {
        t.push(Record::checkpoint(0, BodyBegin));
        for r in 0..refs {
            t.push(Record::access(
                0x40_0000 + 8 * r,
                0x1000_0000 + (r << 16) + 4 * i,
                AccessKind::Read,
            ));
        }
        t.push(Record::checkpoint(0, BodyEnd));
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn framed_format_round_trips_arbitrary_streams(
        records in proptest::collection::vec(arb_record(), 0..300),
        block_bytes in 1usize..512,
    ) {
        let bytes = frame(&records, block_bytes);
        // Zero-copy whole-file path.
        let tf = TraceFile::from_bytes(bytes.clone()).unwrap();
        prop_assert_eq!(tf.record_count(), records.len() as u64);
        let decoded: Result<Vec<Record>, ReadError> = tf.records().collect();
        prop_assert_eq!(decoded.unwrap(), records.clone());
        // Constant-memory streaming path.
        let streamed: Result<Vec<Record>, ReadError> =
            TraceReader::new(bytes.as_slice()).unwrap().collect();
        prop_assert_eq!(streamed.unwrap(), records);
    }

    #[test]
    fn file_backed_analysis_equals_in_ram(
        bodies in 1u32..40,
        refs in 1u32..8,
        block_bytes in 1usize..256,
        shards in 1usize..5,
    ) {
        let records = nest_trace(bodies, refs);
        let in_ram = analyze(&records);
        let tf = TraceFile::from_bytes(frame(&records, block_bytes)).unwrap();
        let sequential = foray::analyze_source(&tf).unwrap();
        prop_assert_eq!(&sequential, &in_ram);
        let config = AnalyzerConfig { shards, ..AnalyzerConfig::default() };
        let sharded = foray::analyze_sharded_source(&tf, config).unwrap();
        prop_assert_eq!(&sharded, &in_ram);
        // The raw zero-copy decoder (no framing) agrees too.
        let raw = minic_trace::binary::to_bytes(&records);
        let from_raw = foray::analyze_source(RecordReader::new(&raw)).unwrap();
        prop_assert_eq!(&from_raw, &in_ram);
    }

    #[test]
    fn truncation_is_always_rejected(
        records in proptest::collection::vec(arb_record(), 1..80),
        block_bytes in 1usize..128,
        cut_seed in 0usize..10_000,
    ) {
        let bytes = frame(&records, block_bytes);
        // Cut anywhere strictly inside the file: open must fail (the frame
        // walk covers every structure) and streaming must error too.
        let cut = 1 + (bytes.len() - 2) * cut_seed / 10_000;
        let truncated = bytes[..cut].to_vec();
        prop_assert!(TraceFile::from_bytes(truncated.clone()).is_err(), "cut={cut}");
        let streamed: Result<Vec<Record>, ReadError> = match TraceReader::new(truncated.as_slice()) {
            Ok(r) => r.collect(),
            Err(e) => Err(e),
        };
        prop_assert!(streamed.is_err(), "cut={cut}");
    }
}

#[test]
fn corrupt_headers_are_rejected_with_typed_errors() {
    let bytes = frame(&nest_trace(4, 2), 64);
    let mut bad_magic = bytes.clone();
    bad_magic[0] ^= 0xff;
    assert!(matches!(TraceFile::from_bytes(bad_magic), Err(ReadError::BadMagic(_))));

    let mut future = bytes.clone();
    future[8] = 9;
    let Err(ReadError::UnsupportedVersion(9)) = TraceFile::from_bytes(future) else {
        panic!("future versions must be refused, not guessed at");
    };

    let mut reserved = bytes.clone();
    reserved[11] = 1;
    assert!(matches!(TraceFile::from_bytes(reserved), Err(ReadError::BadHeader)));

    // Payload corruption surfaces as a typed decode error with a file
    // offset inside the corrupted block.
    let mut bad_payload = bytes;
    bad_payload[HEADER_BYTES + 8] = 0x7f;
    let tf = TraceFile::from_bytes(bad_payload).unwrap();
    let err = tf.records().find_map(Result::err).unwrap();
    let ReadError::Decode(d) = err else { panic!("want decode error, got {err}") };
    assert_eq!(d.offset, (HEADER_BYTES + 8) as u64);
}

/// Profiles one workload, returning its trace and its online analysis.
fn profile(w: &foray_workloads::Workload) -> (Vec<Record>, foray::ForayGenOutput) {
    let prog = w.frontend().expect("workload compiles");
    let (_, records) =
        minic_sim::run(&prog, &minic_sim::SimConfig::default(), &w.inputs).expect("workload runs");
    let out = w.run().expect("pipeline runs");
    (records, out)
}

#[test]
fn workload_traces_replay_byte_identically_from_disk() {
    let dir = std::env::temp_dir().join("foray_trace_file_suite");
    std::fs::create_dir_all(&dir).unwrap();
    let mut paths = Vec::new();
    let mut expected = Vec::new();
    for w in foray_workloads::all(foray_workloads::Params::default()) {
        let (records, online) = profile(&w);
        let path = dir.join(format!("{}.ftrace", w.name));
        let written = file::write_file(&path, &records).unwrap();
        assert_eq!(written, records.len() as u64, "{}", w.name);

        let tf = TraceFile::open(&path).unwrap();
        assert_eq!(tf.record_count(), records.len() as u64, "{}", w.name);
        // K = 1 (sequential) and K = auto (0), per the acceptance bar.
        for shards in [1usize, 0] {
            let config = AnalyzerConfig { shards, ..AnalyzerConfig::default() };
            let analysis = if shards == 1 {
                foray::analyze_source_with(&tf, config).unwrap()
            } else {
                foray::analyze_sharded_source(&tf, config).unwrap()
            };
            assert_eq!(analysis, online.analysis, "{} K={shards}", w.name);
            let model = ForayModel::extract(&analysis, &FilterConfig::default());
            assert_eq!(
                foray::codegen::emit(&model),
                online.code,
                "{} K={shards}: model code must be byte-identical",
                w.name
            );
        }
        paths.push(path);
        expected.push(online.analysis.clone());
    }

    // The batch fan-out sees the same analyses, in path order, for any
    // worker count.
    for workers in [1usize, 3, 0] {
        let results = foray::analyze_trace_files(&paths, workers, &AnalyzerConfig::default());
        assert_eq!(results.len(), expected.len());
        for ((result, want), path) in results.into_iter().zip(&expected).zip(&paths) {
            assert_eq!(&result.unwrap(), want, "workers={workers} path={}", path.display());
        }
    }

    // Missing files keep their slot as a typed error.
    let mut with_missing = paths.clone();
    with_missing.push(dir.join("missing.ftrace"));
    let results = foray::analyze_trace_files(&with_missing, 2, &AnalyzerConfig::default());
    assert!(results.last().unwrap().is_err());
    assert!(results[..results.len() - 1].iter().all(Result::is_ok));

    for p in paths {
        std::fs::remove_file(p).ok();
    }
}

#[test]
fn streaming_writer_on_a_profiling_run_matches_buffered_write() {
    // TraceWriter as the live simulation sink (the `trace record` path)
    // produces the same file a post-hoc write_file produces.
    let w = foray_workloads::by_name("adpcmc", foray_workloads::Params::default()).unwrap();
    let prog = w.frontend().unwrap();
    let mut writer = TraceWriter::new(Vec::new());
    minic_sim::run_with_sink(&prog, &minic_sim::SimConfig::default(), &w.inputs, &mut writer)
        .unwrap();
    assert!(writer.io_error().is_none());
    let live = writer.into_inner();

    let (_, records) = minic_sim::run(&prog, &minic_sim::SimConfig::default(), &w.inputs).unwrap();
    let mut buffered = Vec::new();
    file::write_to(&mut buffered, &records).unwrap();
    assert_eq!(live, buffered, "live sink and buffered write must agree byte-for-byte");
}

#[test]
fn record_source_replay_counts_match() {
    let records = nest_trace(10, 3);
    let tf = TraceFile::from_bytes(frame(&records, 128)).unwrap();
    let mut sink = minic_trace::CountingSink::new();
    let n = (&tf).stream_into(&mut sink).unwrap();
    assert_eq!(n, records.len() as u64);
    assert_eq!(sink.total(), records.len() as u64);
    // ForayGen pipelines and file replays agree end to end on a tiny
    // program too (guards the CLI contract at the library level).
    let src = "int a[64]; void main() { int i; for (i = 0; i < 64; i++) { a[i] = i; } }";
    let out = ForayGen::new().run_source(src).unwrap();
    let prog = minic::frontend(src).unwrap();
    let (_, recs) = minic_sim::run(&prog, &minic_sim::SimConfig::default(), &[]).unwrap();
    let mut framed = Vec::new();
    file::write_to(&mut framed, &recs).unwrap();
    let tf = TraceFile::from_bytes(framed).unwrap();
    assert_eq!(foray::analyze_source(&tf).unwrap(), out.analysis);
}
