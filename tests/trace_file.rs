//! File-backed trace pipeline lock-down.
//!
//! The `foray-trace` container promises that a trace recorded to disk —
//! in either format version — and replayed through any reader produces
//! **byte-identical** analysis to the in-RAM record slice. This suite
//! pins that promise on three fronts:
//!
//! * property tests: arbitrary record streams → `TraceWriter` (random
//!   block sizes, both formats) → `TraceFile` / `TraceReader` / raw
//!   `RecordReader` → identical records and identical `Analysis`;
//! * corruption: truncation at every structural boundary, bad magic,
//!   future and unknown versions, flipped v1 payload bytes, and flipped
//!   v2 payload/CRC/index bytes are all rejected with typed errors,
//!   never mis-decoded;
//! * the workload corpus: profile once, write the trace file in *both*
//!   formats, re-analyze each sequentially and sharded (K ∈ {1, auto})
//!   and require equality with the online in-RAM analysis — model code
//!   included — plus the `analyze_trace_files` batch fan-out, and
//!   require the v2 file to be smaller than its v1 sibling.

use foray::{analyze, AnalyzerConfig, FilterConfig, ForayGen, ForayModel};
use minic::CheckpointKind::{BodyBegin, BodyEnd, LoopBegin};
use minic::LoopId;
use minic_trace::binary::RecordReader;
use minic_trace::file::{self, FormatVersion, TraceReader, TraceWriter, HEADER_BYTES};
use minic_trace::{AccessKind, ReadError, Record, RecordSource, TraceFile, TraceSink};
use proptest::prelude::*;

const FORMATS: [FormatVersion; 2] = [FormatVersion::V1, FormatVersion::V2];

/// Frames a record slice with an explicit format and block capacity.
fn frame_with(format: FormatVersion, records: &[Record], block_bytes: usize) -> Vec<u8> {
    let mut w = TraceWriter::with_options(Vec::new(), format, block_bytes);
    for r in records {
        w.record(r);
    }
    w.finish();
    assert!(w.io_error().is_none());
    w.into_inner()
}

/// Frames with the default (v2) format.
fn frame(records: &[Record], block_bytes: usize) -> Vec<u8> {
    frame_with(FormatVersion::default(), records, block_bytes)
}

fn arb_record() -> impl Strategy<Value = Record> {
    prop_oneof![
        (0u32..64, 0usize..3).prop_map(|(l, k)| {
            let kind = [LoopBegin, BodyBegin, BodyEnd][k];
            Record::checkpoint(l, kind)
        }),
        (any::<u32>(), any::<u32>(), any::<bool>()).prop_map(|(i, a, w)| {
            Record::access(i, a, if w { AccessKind::Write } else { AccessKind::Read })
        }),
    ]
}

fn arb_format() -> impl Strategy<Value = FormatVersion> {
    prop_oneof![Just(FormatVersion::V1), Just(FormatVersion::V2)]
}

/// A structured trace (real loop nesting) so the replayed analyses have
/// meaningful loop trees and affine fits, not just record counts.
fn nest_trace(bodies: u32, refs: u32) -> Vec<Record> {
    let mut t = vec![Record::checkpoint(0, LoopBegin)];
    for i in 0..bodies {
        t.push(Record::checkpoint(0, BodyBegin));
        for r in 0..refs {
            t.push(Record::access(
                0x40_0000 + 8 * r,
                0x1000_0000 + (r << 16) + 4 * i,
                AccessKind::Read,
            ));
        }
        t.push(Record::checkpoint(0, BodyEnd));
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn framed_format_round_trips_arbitrary_streams(
        format in arb_format(),
        records in proptest::collection::vec(arb_record(), 0..300),
        block_bytes in 1usize..512,
    ) {
        let bytes = frame_with(format, &records, block_bytes);
        // Zero-copy whole-file path.
        let tf = TraceFile::from_bytes(bytes.clone()).unwrap();
        prop_assert_eq!(tf.version(), format);
        prop_assert_eq!(tf.record_count(), records.len() as u64);
        let decoded: Result<Vec<Record>, ReadError> = tf.records().collect();
        prop_assert_eq!(decoded.unwrap(), records.clone());
        // Constant-memory streaming path.
        let streamed: Result<Vec<Record>, ReadError> =
            TraceReader::new(bytes.as_slice()).unwrap().collect();
        prop_assert_eq!(streamed.unwrap(), records);
    }

    #[test]
    fn file_backed_analysis_equals_in_ram(
        format in arb_format(),
        bodies in 1u32..40,
        refs in 1u32..8,
        block_bytes in 1usize..256,
        shards in 1usize..5,
    ) {
        let records = nest_trace(bodies, refs);
        let in_ram = analyze(&records);
        let tf = TraceFile::from_bytes(frame_with(format, &records, block_bytes)).unwrap();
        let sequential = foray::analyze_source(&tf).unwrap();
        prop_assert_eq!(&sequential, &in_ram);
        let config = AnalyzerConfig { shards, ..AnalyzerConfig::default() };
        let sharded = foray::analyze_sharded_source(&tf, config).unwrap();
        prop_assert_eq!(&sharded, &in_ram);
        // The raw zero-copy decoder (no framing) agrees too.
        let raw = minic_trace::binary::to_bytes(&records);
        let from_raw = foray::analyze_source(RecordReader::new(&raw)).unwrap();
        prop_assert_eq!(&from_raw, &in_ram);
    }

    #[test]
    fn truncation_is_always_rejected(
        format in arb_format(),
        records in proptest::collection::vec(arb_record(), 1..80),
        block_bytes in 1usize..128,
        cut_seed in 0usize..10_000,
    ) {
        let bytes = frame_with(format, &records, block_bytes);
        // Cut anywhere strictly inside the file: open must fail (the frame
        // walk covers every structure) and streaming must error too.
        let cut = 1 + (bytes.len() - 2) * cut_seed / 10_000;
        let truncated = bytes[..cut].to_vec();
        prop_assert!(TraceFile::from_bytes(truncated.clone()).is_err(), "cut={cut}");
        let streamed: Result<Vec<Record>, ReadError> = match TraceReader::new(truncated.as_slice()) {
            Ok(r) => r.collect(),
            Err(e) => Err(e),
        };
        prop_assert!(streamed.is_err(), "cut={cut}");
    }

    #[test]
    fn v2_bit_flips_are_always_rejected(
        records in proptest::collection::vec(arb_record(), 1..120),
        block_bytes in 1usize..128,
        byte_seed in 0usize..10_000,
        bit in 0u8..8,
    ) {
        // Flip one bit anywhere past the header: the file must either be
        // refused (open or decode) or still yield exactly the original
        // records — a flipped bit may never silently change the stream.
        // Payload flips trip the block CRC, index flips trip the index
        // CRC/audit, header-field flips trip the structural walk or the
        // footer count; only flips in ignored padding (e.g. the unused
        // bytes of the zero terminator) are absorbed, and those leave the
        // records untouched by construction.
        let bytes = frame(&records, block_bytes);
        let at = HEADER_BYTES + (bytes.len() - HEADER_BYTES - 1) * byte_seed / 10_000;
        let mut flipped = bytes;
        flipped[at] ^= 1 << bit;
        if let Ok(tf) = TraceFile::from_bytes(flipped) {
            let decoded: Result<Vec<Record>, ReadError> = tf.records().collect();
            if let Ok(got) = decoded {
                prop_assert_eq!(got, records, "flip at byte {} bit {}", at, bit);
            }
        }
    }

    #[test]
    fn v2_seek_matches_the_scanned_suffix(
        loops in 2u32..8,
        bodies in 1u32..20,
        block_bytes in 16usize..512,
    ) {
        let mut records = Vec::new();
        for l in 0..loops {
            records.push(Record::checkpoint(l, LoopBegin));
            for i in 0..bodies {
                records.push(Record::checkpoint(l, BodyBegin));
                records.push(Record::access(
                    0x40_0000 + 4 * l,
                    0x1000_0000 + (l << 16) + 4 * i,
                    AccessKind::Read,
                ));
                records.push(Record::checkpoint(l, BodyEnd));
            }
        }
        let tf = TraceFile::from_bytes(frame(&records, block_bytes)).unwrap();
        for l in 0..loops {
            let first = records
                .iter()
                .position(|r| matches!(r, Record::Checkpoint { loop_id, .. } if loop_id.0 == l))
                .unwrap();
            let got: Vec<Record> = tf
                .records_from_loop(LoopId(l))
                .expect("loop is in the trace, so the index must cover it")
                .map(Result::unwrap)
                .collect();
            prop_assert_eq!(&got[..], &records[first..], "loop {}", l);
        }
        prop_assert!(tf.records_from_loop(LoopId(loops)).is_none());
    }
}

#[test]
fn corrupt_headers_are_rejected_with_typed_errors() {
    let bytes = frame(&nest_trace(4, 2), 64);
    let mut bad_magic = bytes.clone();
    bad_magic[0] ^= 0xff;
    assert!(matches!(TraceFile::from_bytes(bad_magic), Err(ReadError::BadMagic(_))));

    let mut future = bytes.clone();
    future[8] = 9;
    let err = TraceFile::from_bytes(future).unwrap_err();
    let ReadError::UnsupportedVersion(9) = err else {
        panic!("future versions must be refused, not guessed at");
    };
    assert!(err.to_string().contains("newer than this reader"), "{err}");

    // Version 0 was never assigned: "unknown", not "newer".
    let mut unknown = bytes.clone();
    unknown[8] = 0;
    let err = TraceFile::from_bytes(unknown).unwrap_err();
    assert!(matches!(err, ReadError::UnsupportedVersion(0)));
    assert!(err.to_string().contains("unknown"), "{err}");

    let mut reserved = bytes.clone();
    reserved[11] = 1;
    assert!(matches!(TraceFile::from_bytes(reserved), Err(ReadError::BadHeader)));

    // v2 payload corruption trips the block CRC at open time.
    let mut bad_payload = bytes;
    bad_payload[HEADER_BYTES + 12] ^= 0x7f;
    assert!(matches!(
        TraceFile::from_bytes(bad_payload),
        Err(ReadError::BadBlockCrc { offset: 16, .. })
    ));

    // v1 has no CRC: payload corruption surfaces as a typed decode error
    // with a file offset inside the corrupted block.
    let v1 = frame_with(FormatVersion::V1, &nest_trace(4, 2), 64);
    let mut bad_payload = v1;
    bad_payload[HEADER_BYTES + 8] = 0x7f;
    let tf = TraceFile::from_bytes(bad_payload).unwrap();
    let err = tf.records().find_map(Result::err).unwrap();
    let ReadError::Decode(d) = err else { panic!("want decode error, got {err}") };
    assert_eq!(d.offset, (HEADER_BYTES + 8) as u64);
}

#[test]
fn block_capacity_boundaries_round_trip_in_both_formats() {
    // The writer clamps any requested capacity into the readers' accepted
    // window; files written at the extremes (and just around the default)
    // must replay exactly in both formats.
    let records = nest_trace(12, 3);
    for format in FORMATS {
        for cap in [0usize, 1, file::DEFAULT_BLOCK_BYTES - 1, file::DEFAULT_BLOCK_BYTES, usize::MAX]
        {
            let bytes = frame_with(format, &records, cap);
            let tf = TraceFile::from_bytes(bytes.clone()).unwrap();
            assert!(tf.block_hint() <= 1 << 30, "{format} cap={cap}: hint must be clamped");
            let decoded: Vec<Record> = tf.records().map(Result::unwrap).collect();
            assert_eq!(decoded, records, "{format} cap={cap}");
            let streamed: Vec<Record> =
                TraceReader::new(bytes.as_slice()).unwrap().map(Result::unwrap).collect();
            assert_eq!(streamed, records, "{format} cap={cap}");
        }
    }
}

/// Profiles one workload, returning its trace and its online analysis.
fn profile(w: &foray_workloads::Workload) -> (Vec<Record>, foray::ForayGenOutput) {
    let prog = w.frontend().expect("workload compiles");
    let (_, records) =
        minic_sim::run(&prog, &minic_sim::SimConfig::default(), &w.inputs).expect("workload runs");
    let out = w.run().expect("pipeline runs");
    (records, out)
}

#[test]
fn workload_traces_replay_byte_identically_from_disk() {
    let dir = std::env::temp_dir().join("foray_trace_file_suite");
    std::fs::create_dir_all(&dir).unwrap();
    let mut paths = Vec::new();
    let mut expected = Vec::new();
    for w in foray_workloads::all(foray_workloads::Params::default()) {
        let (records, online) = profile(&w);
        let mut sizes = [0u64; 2];
        for (fi, format) in FORMATS.into_iter().enumerate() {
            let path = dir.join(format!("{}.{format}.ftrace", w.name));
            let written = file::write_file_with(&path, &records, format).unwrap();
            assert_eq!(written, records.len() as u64, "{} {format}", w.name);
            sizes[fi] = std::fs::metadata(&path).unwrap().len();

            let tf = TraceFile::open(&path).unwrap();
            assert_eq!(tf.version(), format, "{}", w.name);
            assert_eq!(tf.record_count(), records.len() as u64, "{}", w.name);
            // K = 1 (sequential) and K = auto (0), per the acceptance bar.
            for shards in [1usize, 0] {
                let config = AnalyzerConfig { shards, ..AnalyzerConfig::default() };
                let analysis = if shards == 1 {
                    foray::analyze_source_with(&tf, config).unwrap()
                } else {
                    foray::analyze_sharded_source(&tf, config).unwrap()
                };
                assert_eq!(analysis, online.analysis, "{} {format} K={shards}", w.name);
                let model = ForayModel::extract(&analysis, &FilterConfig::default());
                assert_eq!(
                    foray::codegen::emit(&model),
                    online.code,
                    "{} {format} K={shards}: model code must be byte-identical",
                    w.name
                );
            }
            paths.push(path);
            expected.push(online.analysis.clone());
        }
        assert!(
            sizes[1] < sizes[0],
            "{}: v2 ({}) must be smaller than v1 ({})",
            w.name,
            sizes[1],
            sizes[0]
        );
    }

    // The batch fan-out sees the same analyses, in path order, for any
    // worker count — v1 and v2 files mixed in one batch.
    for workers in [1usize, 3, 0] {
        let results = foray::analyze_trace_files(&paths, workers, &AnalyzerConfig::default());
        assert_eq!(results.len(), expected.len());
        for ((result, want), path) in results.into_iter().zip(&expected).zip(&paths) {
            assert_eq!(&result.unwrap(), want, "workers={workers} path={}", path.display());
        }
    }

    // Missing files keep their slot as a typed error.
    let mut with_missing = paths.clone();
    with_missing.push(dir.join("missing.ftrace"));
    let results = foray::analyze_trace_files(&with_missing, 2, &AnalyzerConfig::default());
    assert!(results.last().unwrap().is_err());
    assert!(results[..results.len() - 1].iter().all(Result::is_ok));

    for p in paths {
        std::fs::remove_file(p).ok();
    }
}

#[test]
fn streaming_writer_on_a_profiling_run_matches_buffered_write() {
    // TraceWriter as the live simulation sink (the `trace record` path)
    // produces the same file a post-hoc write_file produces — in both
    // formats (v2 exercises the delta state and index bookkeeping under
    // record-at-a-time pressure).
    let w = foray_workloads::by_name("adpcmc", foray_workloads::Params::default()).unwrap();
    let prog = w.frontend().unwrap();
    let (_, records) = minic_sim::run(&prog, &minic_sim::SimConfig::default(), &w.inputs).unwrap();
    for format in FORMATS {
        let mut writer = TraceWriter::with_format(Vec::new(), format);
        minic_sim::run_with_sink(&prog, &minic_sim::SimConfig::default(), &w.inputs, &mut writer)
            .unwrap();
        assert!(writer.io_error().is_none());
        let live = writer.into_inner();

        let mut buffered = Vec::new();
        file::write_to_with(&mut buffered, &records, format).unwrap();
        assert_eq!(live, buffered, "{format}: live sink and buffered write must agree");
    }
}

#[test]
fn record_source_replay_counts_match() {
    let records = nest_trace(10, 3);
    let tf = TraceFile::from_bytes(frame(&records, 128)).unwrap();
    let mut sink = minic_trace::CountingSink::new();
    let n = (&tf).stream_into(&mut sink).unwrap();
    assert_eq!(n, records.len() as u64);
    assert_eq!(sink.total(), records.len() as u64);
    // ForayGen pipelines and file replays agree end to end on a tiny
    // program too (guards the CLI contract at the library level).
    let src = "int a[64]; void main() { int i; for (i = 0; i < 64; i++) { a[i] = i; } }";
    let out = ForayGen::new().run_source(src).unwrap();
    let prog = minic::frontend(src).unwrap();
    let (_, recs) = minic_sim::run(&prog, &minic_sim::SimConfig::default(), &[]).unwrap();
    let mut framed = Vec::new();
    file::write_to(&mut framed, &recs).unwrap();
    let tf = TraceFile::from_bytes(framed).unwrap();
    assert_eq!(foray::analyze_source(&tf).unwrap(), out.analysis);
}
