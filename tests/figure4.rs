//! End-to-end pinning of the paper's Fig. 4 worked example: annotation,
//! trace shape, loop-structure reconstruction, and the recovered affine
//! expression.

use foray::{FilterConfig, ForayGen};
use minic::CheckpointKind;
use minic_trace::{text, AccessKind, Record};

const FIGURE_4A: &str = "char q[10000];
char *ptr;
void main() {
    int i;
    int t1 = 98;
    ptr = q;
    while (t1 < 100) {
        t1++;
        ptr += 100;
        for (i = 40; i > 37; i--) {
            *ptr++ = i * i % 256;
        }
    }
}";

fn run() -> foray::ForayGenOutput {
    ForayGen::new()
        .filter(FilterConfig { n_exec: 6, n_loc: 6 })
        .run_source(FIGURE_4A)
        .expect("figure 4 program runs")
}

#[test]
fn annotated_source_has_all_six_checkpoints() {
    let prog = minic::frontend(FIGURE_4A).unwrap();
    let text = minic::pretty(&prog);
    // Two loops × three checkpoint kinds; flat ids 0..5 in our numbering
    // (the paper's example uses 12..17 — same three-per-loop scheme).
    for n in 0..6 {
        assert!(text.contains(&format!("CHECKPOINT({n});")), "missing checkpoint {n}:\n{text}");
    }
}

#[test]
fn trace_against_paper_sequence() {
    let prog = minic::frontend(FIGURE_4A).unwrap();
    let (_, records) = minic_sim::run(&prog, &minic_sim::SimConfig::default(), &[]).unwrap();
    // Project onto the record kinds of Fig 4(c): checkpoints and the
    // writes through `ptr` into q (ptr itself is a memory-resident global,
    // so the raw trace also contains its own read-modify-write traffic,
    // which the paper's register-allocated compile would fold away).
    let q_lo = minic_trace::layout::GLOBAL_BASE;
    let q_hi = q_lo + 10_000;
    let projected: Vec<String> = records
        .iter()
        .filter_map(|r| match r {
            Record::Checkpoint { loop_id, kind } => {
                Some(format!("C{}", minic::checkpoint_number(*loop_id, *kind)))
            }
            Record::Access(a)
                if a.kind == AccessKind::Write && (q_lo..q_hi).contains(&a.addr.0) =>
            {
                Some(format!("W{:+}", a.addr.0 - q_lo))
            }
            _ => None,
        })
        .collect();
    // The paper's sequence (its ids 12..17 map to ours 0..5):
    // LB(w) [BB(w) LB(f) (BB(f) wr BE(f))x3 BE(w)] x2.
    let expected = [
        "C0", "C1", "C3", "C4", "W+100", "C5", "C4", "W+101", "C5", "C4", "W+102", "C5", "C2",
        "C1", "C3", "C4", "W+203", "C5", "C4", "W+204", "C5", "C4", "W+205", "C5", "C2",
    ];
    assert_eq!(projected, expected);
}

#[test]
fn model_matches_figure_4d() {
    let out = run();
    assert_eq!(out.model.ref_count(), 1);
    let r = &out.model.refs[0];
    assert_eq!(r.terms.len(), 2);
    assert_eq!((r.terms[0].coeff, r.terms[0].level), (1, 1));
    assert_eq!((r.terms[1].coeff, r.terms[1].level), (103, 2));
    assert!(!r.is_partial());
    assert_eq!(r.execs, 6);
    assert_eq!(r.footprint, 6);
    assert_eq!(r.writes, 6);
    // Trip counts: inner 3, outer 2 (Fig 4(d)'s i15<3, i12<2).
    let trips: Vec<u64> = r.node_path.iter().map(|n| out.model.loops[n].trip).collect();
    assert_eq!(trips, vec![3, 2]);
    // The constant is the first q+100 write (our address space, not the
    // paper's 2147440948 — theirs was a SimpleScalar stack address).
    assert_eq!(r.constant, (minic_trace::layout::GLOBAL_BASE + 100) as i64);
}

#[test]
fn paper_format_trace_round_trips_through_offline_analysis() {
    // Serialize the trace in the paper's text format, parse it back, and
    // analyze offline: identical model to the online run.
    let prog = minic::frontend(FIGURE_4A).unwrap();
    let (_, records) = minic_sim::run(&prog, &minic_sim::SimConfig::default(), &[]).unwrap();
    let textual = text::to_text(&records);
    assert!(textual.contains("Checkpoint: 0"));
    assert!(textual.contains(" wr"));
    let parsed = text::from_text(&textual).unwrap();
    assert_eq!(parsed, records);
    let offline = foray::analyze(&parsed);
    let online = run();
    assert_eq!(offline.refs().len(), online.analysis.refs().len());
}

#[test]
fn binary_format_round_trips_too() {
    let prog = minic::frontend(FIGURE_4A).unwrap();
    let (_, records) = minic_sim::run(&prog, &minic_sim::SimConfig::default(), &[]).unwrap();
    let bytes = minic_trace::binary::to_bytes(&records);
    assert_eq!(minic_trace::binary::from_bytes(&bytes).unwrap(), records);
}

#[test]
fn loop_tree_shape() {
    let out = run();
    let tree = out.analysis.tree();
    // root + while + for.
    assert_eq!(tree.len(), 3);
    let while_node = tree.node(foray::ROOT).child(minic::LoopId(0)).unwrap();
    let for_node = tree.node(while_node).child(minic::LoopId(1)).unwrap();
    assert_eq!(tree.node(while_node).entries, 1);
    assert_eq!(tree.node(while_node).max_trip, 2);
    assert_eq!(tree.node(for_node).entries, 2);
    assert_eq!(tree.node(for_node).max_trip, 3);
}

#[test]
fn default_thresholds_filter_the_small_example() {
    // With the paper's Nexec=20/Nloc=10 the 6-access example is purged —
    // exactly what Step 4 is for.
    let out = ForayGen::new().run_source(FIGURE_4A).expect("runs");
    assert_eq!(out.model.ref_count(), 0);
    let _ = CheckpointKind::LoopBegin; // silence unused import lint paths
}
