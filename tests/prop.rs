//! Property-based tests (proptest) for the core invariants:
//!
//! * Algorithm 3 recovers randomly generated affine access patterns
//!   *exactly*;
//! * both trace codecs round-trip arbitrary record streams;
//! * the interpreter agrees with a Rust-side reference evaluator on random
//!   arithmetic expressions;
//! * pretty-printed programs re-parse to the same text (fixpoint);
//! * the exact knapsack dominates greedy and matches brute force on small
//!   instances.

use foray::{analyze, FilterConfig, ForayModel};
use minic::CheckpointKind::{BodyBegin, BodyEnd, LoopBegin};
use minic_trace::{AccessKind, Record};
use proptest::prelude::*;

// ---------- Algorithm 3 recovers synthetic affine nests ----------

#[derive(Debug, Clone)]
struct AffineSpec {
    base: u32,
    coeffs: Vec<i64>, // innermost first
    trips: Vec<u64>,  // innermost first
}

fn affine_spec() -> impl Strategy<Value = AffineSpec> {
    (1usize..=3)
        .prop_flat_map(|depth| {
            (
                0x1000_0000u32..0x2000_0000,
                proptest::collection::vec((-64i64..=64).prop_filter("nonzero", |c| *c != 0), depth),
                proptest::collection::vec(2u64..=6, depth),
            )
        })
        .prop_map(|(base, coeffs, trips)| AffineSpec { base, coeffs, trips })
}

/// Builds the exact checkpoint/access stream of a perfect loop nest
/// executing `A[base + Σ c_i * it_i]` once per innermost iteration.
fn synth_trace(spec: &AffineSpec) -> Vec<Record> {
    let depth = spec.trips.len();
    let mut recs = Vec::new();
    // Iterative odometer over outermost..innermost.
    fn rec(
        level: usize, // 0 = outermost in this walk
        depth: usize,
        spec: &AffineSpec,
        iters: &mut Vec<i64>, // innermost-first
        recs: &mut Vec<Record>,
    ) {
        let loop_id = level as u32; // outermost loop gets id 0
        let inner_index = depth - 1 - level; // position in innermost-first vectors
        recs.push(Record::checkpoint(loop_id, LoopBegin));
        for it in 0..spec.trips[inner_index] {
            recs.push(Record::checkpoint(loop_id, BodyBegin));
            iters[inner_index] = it as i64;
            if level + 1 == depth {
                let mut addr = spec.base as i64;
                for (c, v) in spec.coeffs.iter().zip(iters.iter()) {
                    addr += c * v;
                }
                recs.push(Record::access(0x40_0000, addr as u32, AccessKind::Read));
            } else {
                rec(level + 1, depth, spec, iters, recs);
            }
            recs.push(Record::checkpoint(loop_id, BodyEnd));
        }
    }
    let mut iters = vec![0i64; depth];
    rec(0, depth, spec, &mut iters, &mut recs);
    recs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn algorithm3_recovers_random_affine_nests(spec in affine_spec()) {
        let trace = synth_trace(&spec);
        let analysis = analyze(&trace);
        prop_assert_eq!(analysis.refs().len(), 1);
        let st = &analysis.refs()[0].state;
        prop_assert!(!st.is_non_analyzable());
        prop_assert!(st.is_full(), "window {} of {}", st.window(), st.nest_level());
        prop_assert_eq!(st.constant(), spec.base as i64);
        prop_assert_eq!(st.mispredictions(), 0);
        for (i, c) in spec.coeffs.iter().enumerate() {
            prop_assert_eq!(st.coefficients()[i], Some(*c));
        }
        // Prediction reproduces every address (spot-check the last corner).
        let corner: Vec<i64> = spec.trips.iter().map(|t| *t as i64 - 1).collect();
        let mut expect = spec.base as i64;
        for (c, v) in spec.coeffs.iter().zip(corner.iter()) {
            expect += c * v;
        }
        prop_assert_eq!(st.predict(&corner), expect);
    }

    #[test]
    fn perturbed_nests_are_never_misreported_as_full(
        spec in affine_spec(),
        jitter in 1u32..1000,
    ) {
        // Corrupt one address mid-stream; the reference must not surface as
        // a clean full-affine fit with zero mispredictions.
        let mut trace = synth_trace(&spec);
        let accesses: Vec<usize> = trace
            .iter()
            .enumerate()
            .filter(|(_, r)| matches!(r, Record::Access(_)))
            .map(|(i, _)| i)
            .collect();
        prop_assume!(accesses.len() >= 3);
        let victim = accesses[accesses.len() / 2];
        if let Record::Access(a) = &mut trace[victim] {
            a.addr = minic_trace::MemAddr(a.addr.0 ^ jitter);
        }
        let analysis = analyze(&trace);
        let st = &analysis.refs()[0].state;
        prop_assert!(
            st.is_non_analyzable() || st.mispredictions() > 0 || !st.is_full(),
            "corruption must leave a trace"
        );
    }
}

// ---------- trace codecs ----------

fn arb_record() -> impl Strategy<Value = Record> {
    prop_oneof![
        (0u32..64, 0usize..3).prop_map(|(l, k)| {
            let kind = [LoopBegin, BodyBegin, BodyEnd][k];
            Record::checkpoint(l, kind)
        }),
        (any::<u32>(), any::<u32>(), any::<bool>()).prop_map(|(i, a, w)| {
            Record::access(i, a, if w { AccessKind::Write } else { AccessKind::Read })
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn text_codec_round_trips(records in proptest::collection::vec(arb_record(), 0..200)) {
        let text = minic_trace::text::to_text(&records);
        let parsed = minic_trace::text::from_text(&text).unwrap();
        prop_assert_eq!(parsed, records);
    }

    #[test]
    fn binary_codec_round_trips(records in proptest::collection::vec(arb_record(), 0..200)) {
        let bytes = minic_trace::binary::to_bytes(&records);
        let parsed = minic_trace::binary::from_bytes(&bytes).unwrap();
        prop_assert_eq!(parsed, records);
    }
}

// ---------- interpreter vs reference evaluator ----------

#[derive(Debug, Clone)]
enum RefExpr {
    Lit(i32),
    Add(Box<RefExpr>, Box<RefExpr>),
    Sub(Box<RefExpr>, Box<RefExpr>),
    Mul(Box<RefExpr>, Box<RefExpr>),
    Div(Box<RefExpr>, Box<RefExpr>),
    Rem(Box<RefExpr>, Box<RefExpr>),
}

impl RefExpr {
    fn eval(&self) -> i64 {
        match self {
            RefExpr::Lit(v) => *v as i64,
            RefExpr::Add(a, b) => a.eval().wrapping_add(b.eval()),
            RefExpr::Sub(a, b) => a.eval().wrapping_sub(b.eval()),
            RefExpr::Mul(a, b) => a.eval().wrapping_mul(b.eval()),
            RefExpr::Div(a, b) => {
                let d = b.eval();
                if d == 0 {
                    0
                } else {
                    a.eval().wrapping_div(d)
                }
            }
            RefExpr::Rem(a, b) => {
                let d = b.eval();
                if d == 0 {
                    0
                } else {
                    a.eval().wrapping_rem(d)
                }
            }
        }
    }

    /// Renders as mini-C, guarding divisions like the generator does.
    fn to_c(&self) -> String {
        match self {
            RefExpr::Lit(v) => {
                if *v < 0 {
                    format!("(0 - {})", -(*v as i64))
                } else {
                    v.to_string()
                }
            }
            RefExpr::Add(a, b) => format!("({} + {})", a.to_c(), b.to_c()),
            RefExpr::Sub(a, b) => format!("({} - {})", a.to_c(), b.to_c()),
            RefExpr::Mul(a, b) => format!("({} * {})", a.to_c(), b.to_c()),
            // Mini-C division by zero is a runtime error; mirror the
            // reference's guard inline with a ternary.
            RefExpr::Div(a, b) => {
                format!("({1} == 0 ? 0 : {0} / {1})", a.to_c(), b.to_c())
            }
            RefExpr::Rem(a, b) => {
                format!("({1} == 0 ? 0 : {0} % {1})", a.to_c(), b.to_c())
            }
        }
    }
}

fn arb_ref_expr() -> impl Strategy<Value = RefExpr> {
    let leaf = (-1000i32..1000).prop_map(RefExpr::Lit);
    leaf.prop_recursive(4, 32, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| RefExpr::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| RefExpr::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| RefExpr::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| RefExpr::Div(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| RefExpr::Rem(Box::new(a), Box::new(b))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn interpreter_matches_reference_arithmetic(e in arb_ref_expr()) {
        // The ternary guards make the expression total; values can exceed
        // i32 mid-expression (both sides compute in i64).
        let expected = e.eval();
        let src = format!("void main() {{ print_int({}); }}", e.to_c());
        let prog = minic::frontend(&src).unwrap();
        let (outcome, _) =
            minic_sim::run(&prog, &minic_sim::SimConfig::default(), &[]).unwrap();
        prop_assert_eq!(outcome.printed[0], expected);
    }

    #[test]
    fn pretty_print_is_a_fixpoint(e in arb_ref_expr()) {
        // parse . pretty = identity on the pretty form.
        let src = format!("void main() {{ print_int({}); }}", e.to_c());
        let prog = minic::parse(&src).unwrap();
        let once = minic::pretty(&prog);
        let twice = minic::pretty(&minic::parse(&once).unwrap());
        prop_assert_eq!(once, twice);
    }
}

// ---------- knapsack optimality ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn exact_knapsack_dominates_greedy_and_matches_bruteforce(
        sizes in proptest::collection::vec((16u32..200, 100u64..100_000), 1..7),
        capacity in 50u32..600,
    ) {
        let energy = foray_spm::EnergyModel::default();
        let candidates: Vec<foray_spm::BufferCandidate> = sizes
            .iter()
            .enumerate()
            .map(|(i, (size, accesses))| foray_spm::BufferCandidate {
                ref_idx: i,
                array: format!("A{i}"),
                level: 1,
                size_bytes: *size,
                spm_accesses: *accesses,
                fill_elems: accesses / 50,
                writeback_elems: 0,
                activations: 1,
                elem_bytes: 4,
            })
            .collect();
        let exact = foray_spm::select_exact(&candidates, &energy, capacity);
        let greedy = foray_spm::select_greedy(&candidates, &energy, capacity);
        prop_assert!(exact.savings_nj >= greedy.savings_nj - 1e-6);
        prop_assert!(exact.used_bytes <= capacity);

        // Brute force over all subsets (≤ 2^6).
        let mut best = 0.0f64;
        for mask in 0u32..(1 << candidates.len()) {
            let mut size = 0u32;
            let mut value = 0.0;
            for (i, c) in candidates.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    size += c.size_bytes;
                    value += c.savings_nj(&energy);
                }
            }
            if size <= capacity && value > best {
                best = value;
            }
        }
        prop_assert!((exact.savings_nj - best).abs() < 1e-6,
            "exact {} vs brute force {}", exact.savings_nj, best);
    }
}

// ---------- model extraction sanity over random nests ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn extraction_respects_filter_thresholds(
        spec in affine_spec(),
        n_exec in 1u64..200,
        n_loc in 1u64..100,
    ) {
        let trace = synth_trace(&spec);
        let analysis = analyze(&trace);
        let model = ForayModel::extract(&analysis, &FilterConfig { n_exec, n_loc });
        let execs: u64 = spec.trips.iter().product();
        let kept = model.ref_count() == 1;
        if kept {
            let r = &model.refs[0];
            prop_assert!(r.execs >= n_exec);
            prop_assert!(r.footprint >= n_loc);
            prop_assert_eq!(r.execs, execs);
        } else {
            // Dropped: at least one threshold (or the iterator condition)
            // must have failed.
            let footprint = analysis.refs()[0].state.footprint().unwrap();
            prop_assert!(
                execs < n_exec
                    || footprint < n_loc
                    || !analysis.refs()[0].state.has_iterator()
            );
        }
    }
}
