//! Cross-validation of the dynamic extraction against the static detector:
//! on purely canonical code both must find the same references; on
//! pointer/`while` code only FORAY-GEN does. This is the machinery behind
//! Table II and the 2x headline.

use foray::{CaptureComparison, FilterConfig, ForayGen};
use std::collections::HashSet;

fn compare(src: &str, filter: FilterConfig) -> (CaptureComparison, foray::ForayGenOutput) {
    let out = ForayGen::new().filter(filter).run_source(src).expect("program runs");
    let mut prog = minic::parse(src).unwrap();
    minic::check(&mut prog).unwrap();
    let st = foray_baseline::analyze_program(&prog);
    let loops: HashSet<minic::LoopId> = st.canonical_loops.iter().copied().collect();
    let cmp = CaptureComparison::compute(&out.model, &loops, &st.affine_instrs());
    (cmp, out)
}

#[test]
fn canonical_program_fully_agrees() {
    let (cmp, _) = compare(
        "int a[256]; int b[256];
         void main() {
             int i; int j;
             for (i = 0; i < 16; i++) {
                 for (j = 0; j < 16; j++) {
                     a[16 * i + j] = b[16 * j + i];
                 }
             }
         }",
        FilterConfig::default(),
    );
    assert_eq!(cmp.model_refs, 2);
    assert_eq!(cmp.static_refs, 2, "static analysis must see canonical code");
    assert_eq!(cmp.pct_refs_not_static(), 0.0);
    assert_eq!(cmp.gain(), Some(1.0));
    assert_eq!(cmp.model_loops, 2);
    assert_eq!(cmp.static_loops, 2);
}

#[test]
fn pointer_walk_is_dynamic_only() {
    let (cmp, _) = compare(
        "char q[1000]; char *p;
         void main() {
             int n;
             n = 0;
             p = q;
             while (n < 500) { *p++ = n; n++; }
         }",
        FilterConfig::default(),
    );
    assert_eq!(cmp.model_refs, 1);
    assert_eq!(cmp.static_refs, 0);
    assert_eq!(cmp.pct_refs_not_static(), 100.0);
    assert_eq!(cmp.gain(), None, "static analysis finds nothing to divide by");
}

#[test]
fn mixed_program_shows_the_gain() {
    // One canonical reference + two dynamic-only references → gain 3x.
    let (cmp, _) = compare(
        "int a[64]; char q[1000]; char *p; char *r;
         void main() {
             int i; int n;
             for (i = 0; i < 64; i++) { a[i] = i; }
             n = 0; p = q; r = q;
             while (n < 400) { *p++ = n; n++; }
             do { *r++ = n; n--; } while (n > 0);
         }",
        FilterConfig::default(),
    );
    assert_eq!(cmp.model_refs, 3);
    assert_eq!(cmp.static_refs, 1);
    assert_eq!(cmp.gain(), Some(3.0));
    assert!((cmp.pct_refs_not_static() - 66.66).abs() < 0.1);
}

#[test]
fn dynamic_and_static_coefficients_agree_on_canonical_code() {
    // Where both see a reference, the affine expressions must agree (up to
    // the base address, which only the dynamic side knows).
    let src = "int a[512];
         void main() {
             int i; int j;
             for (i = 0; i < 8; i++) {
                 for (j = 0; j < 32; j++) { a[64 * i + j * 2] = i + j; }
             }
         }";
    let out = ForayGen::new().run_source(src).expect("runs");
    assert_eq!(out.model.ref_count(), 1);
    let r = &out.model.refs[0];
    // Element size 4: dynamic coefficients are 4x the static index form.
    assert_eq!(r.terms[0].coeff, 8, "j*2 over ints");
    assert_eq!(r.terms[1].coeff, 256, "i*64 over ints");

    let mut prog = minic::parse(src).unwrap();
    minic::check(&mut prog).unwrap();
    let st = foray_baseline::analyze_program(&prog);
    assert_eq!(st.affine_sites.len(), 1);
}

#[test]
fn interprocedural_nesting_blinds_the_static_detector_not_foray() {
    // The canonical for sits inside a function called from a while loop:
    // per-function static analysis still accepts the for, but FORAY-GEN
    // additionally recovers the cross-frame stride.
    let (cmp, out) = compare(
        "int a[4096];
         void fill(int base) {
             int i;
             for (i = 0; i < 64; i++) { a[base + i] = i; }
         }
         void main() {
             int n;
             n = 0;
             while (n < 64) { fill(n * 64); n++; }
         }",
        FilterConfig::default(),
    );
    assert_eq!(cmp.model_refs, 1);
    // a[base + i]: `base` is not an iterator → statically invisible.
    assert_eq!(cmp.static_refs, 0);
    let r = &out.model.refs[0];
    assert!(!r.is_partial(), "base is affine in the while iterator");
    assert_eq!(r.terms.len(), 2);
    assert_eq!(r.terms[1].coeff, 256);
}
