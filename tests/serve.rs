//! Service-grade battery for `forayd` (foray-serve): byte-identity of
//! daemon responses against direct `ForayGen` runs over the full corpus,
//! cache semantics verified by counters, concurrency robustness
//! (thundering herd, backpressure, malformed protocol lines, drain
//! shutdown), and property tests pinning the cache-key digest.
//!
//! The load-bearing claim: a cached resubmission returns bytes identical
//! to a direct in-process run **and** to its own cold-path response, for
//! any analysis worker count K — that is exactly the determinism contract
//! the shard/stream equivalence suites lock, lifted to the service layer.

use foray_serve::{
    resolve, Client, ErrorCode, JobInput, JobKind, JobSpec, Response, ServeAddr, ServeConfig,
    Server,
};
use foray_workloads::Params;
use std::sync::Arc;
use std::time::Duration;

/// A manual-drive server: no background workers, jobs run via `step_one`
/// so every test is deterministic.
fn manual(default_shards: usize) -> Server {
    Server::new(ServeConfig { workers: 0, default_shards, ..ServeConfig::default() })
}

fn workload_spec(name: &str) -> JobSpec {
    JobSpec { input: JobInput::Workload(name.to_owned()), ..JobSpec::default() }
}

fn source_spec(source: &str) -> JobSpec {
    JobSpec { input: JobInput::Source(source.to_owned()), ..JobSpec::default() }
}

/// Submit + drive + wait on a manual server, returning (hit, payload).
fn run_job(srv: &Server, spec: &JobSpec) -> (bool, String) {
    let s = srv.submit(spec).expect("submit");
    while srv.step_one() {}
    let (hit, payload) = srv.wait(&s.job, Some(Duration::from_secs(120))).expect("wait");
    (hit, payload.to_string())
}

// ---------- tentpole acceptance: corpus byte-identity across K ----------

/// Every corpus workload, served across K ∈ {1, 2, auto} analysis
/// workers: the daemon's cold response equals a direct `ForayGen` run
/// byte for byte, and the cached resubmission equals the cold response —
/// with the hit verified by counters, not vibes.
#[test]
fn corpus_served_bytes_equal_direct_runs_for_k_1_2_auto() {
    for workload in foray_workloads::all(Params { scale: 1 }) {
        // The direct (no-daemon) reference run: plain sequential pipeline.
        let direct = foray::ForayGen::new()
            .inputs(workload.inputs.clone())
            .run_source(&workload.source)
            .expect("direct run")
            .code;
        for k in [1usize, 2, 0] {
            let srv = manual(k);
            let spec = workload_spec(workload.name);
            let (cold_hit, cold) = run_job(&srv, &spec);
            assert!(!cold_hit);
            assert_eq!(
                cold, direct,
                "{} K={k}: daemon bytes differ from direct run",
                workload.name
            );
            let (warm_hit, warm) = run_job(&srv, &spec);
            assert!(warm_hit, "{} K={k}: resubmission missed the cache", workload.name);
            assert_eq!(warm, cold, "{} K={k}: cached bytes differ from cold", workload.name);
            let st = srv.stats();
            assert_eq!(st.cache_hits, 1, "{} K={k}", workload.name);
            assert_eq!(st.computed, 1, "{} K={k}: hit must not recompute", workload.name);
        }
    }
}

/// Report and DSE payloads cache identically too, and carry their schema
/// tags.
#[test]
fn report_and_dse_payloads_cache_byte_identically() {
    let srv = manual(0);
    for (kind, schema) in
        [(JobKind::Report, "foray-serve-report/v1"), (JobKind::Dse, "foray-dse/v1")]
    {
        let spec = JobSpec { kind, ..workload_spec("histoc") };
        let (hit, cold) = run_job(&srv, &spec);
        assert!(!hit);
        assert!(cold.contains(schema), "{kind:?} payload missing `{schema}`: {cold}");
        let (hit, warm) = run_job(&srv, &spec);
        assert!(hit);
        assert_eq!(warm, cold);
    }
    // Different kinds of the same workload are distinct cache entries.
    assert_eq!(srv.stats().computed, 2);
}

/// The engine ablation rides the cache key: tree and VM engines are
/// distinct entries, but their payloads agree byte for byte (the
/// engine-equivalence guarantee observed through the service).
#[test]
fn engines_are_distinct_keys_with_identical_payloads() {
    let srv = manual(0);
    let vm = workload_spec("adpcmc");
    let tree = JobSpec { engine: foray::Engine::Tree, ..vm.clone() };
    let (_, vm_bytes) = run_job(&srv, &vm);
    let (tree_hit, tree_bytes) = run_job(&srv, &tree);
    assert!(!tree_hit, "engine change must miss the cache");
    assert_eq!(vm_bytes, tree_bytes, "engines must agree on bytes");
    assert_eq!(srv.stats().computed, 2);
}

// ---------- concurrency & robustness ----------

/// N threads hammering the same key: exactly one compute, N identical
/// replies.
#[test]
fn thundering_herd_computes_once() {
    let srv = Arc::new(Server::new(ServeConfig { workers: 2, ..ServeConfig::default() }));
    let spec = workload_spec("histoc");
    let n = 8;
    let handles: Vec<_> = (0..n)
        .map(|_| {
            let srv = Arc::clone(&srv);
            let spec = spec.clone();
            std::thread::spawn(move || {
                let s = srv.submit(&spec).expect("submit");
                let (_, payload) = srv.wait(&s.job, Some(Duration::from_secs(120))).expect("wait");
                payload.to_string()
            })
        })
        .collect();
    let payloads: Vec<String> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert!(payloads.windows(2).all(|w| w[0] == w[1]), "all replies identical");
    let st = srv.stats();
    assert_eq!(st.computed, 1, "one compute for {n} submissions");
    assert_eq!(st.submitted, n);
    assert_eq!(
        st.cache_hits + st.deduped + st.cache_misses,
        n,
        "every submission was a hit, an alias, or the one miss"
    );
}

/// A full queue rejects with a typed, retryable error — and accepted work
/// is never dropped.
#[test]
fn queue_full_rejection_is_typed_and_recoverable() {
    let srv = Server::new(ServeConfig {
        workers: 0,
        queue_capacity: 2,
        retry_after_ms: 33,
        ..ServeConfig::default()
    });
    srv.submit(&source_spec("int a[8]; void main() { a[0] = 1; }")).unwrap();
    srv.submit(&source_spec("int b[8]; void main() { b[0] = 2; }")).unwrap();
    let e = srv.submit(&source_spec("int c[8]; void main() { c[0] = 3; }")).unwrap_err();
    assert_eq!(e.code, ErrorCode::QueueFull);
    assert_eq!(e.retry_after_ms, Some(33), "rejection carries the retry hint");
    // Identical resubmission of *queued* work still dedupes instead of
    // rejecting: backpressure never loses accepted jobs.
    let again = srv.submit(&source_spec("int a[8]; void main() { a[0] = 1; }")).unwrap();
    assert!(!again.hit);
    assert!(srv.step_one(), "queue drains");
    srv.submit(&source_spec("int c[8]; void main() { c[0] = 3; }")).expect("room after draining");
    while srv.step_one() {}
    let st = srv.stats();
    assert_eq!(st.rejected, 1);
    assert_eq!(st.queue_depth, 0);
}

/// Malformed protocol lines get typed errors and the connection stays
/// open — exercised over a real Unix socket.
#[test]
fn malformed_lines_answer_typed_errors_without_killing_the_connection() {
    use std::io::{BufRead, BufReader, Write};
    let sock = std::env::temp_dir().join(format!("foray-serve-mal-{}.sock", std::process::id()));
    let addr = ServeAddr::Unix(sock.clone());
    let server = Server::new(ServeConfig { workers: 1, ..ServeConfig::default() });
    let daemon = {
        let addr = addr.clone();
        std::thread::spawn(move || foray_serve::serve(server, &addr))
    };
    wait_for_socket(&sock);

    let stream = std::os::unix::net::UnixStream::connect(&sock).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut write_line = {
        let mut w = stream.try_clone().unwrap();
        move |line: &str| {
            w.write_all(line.as_bytes()).unwrap();
            w.write_all(b"\n").unwrap();
            w.flush().unwrap();
        }
    };
    let mut read_reply = move || {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        line
    };

    for (bad, code) in [
        ("this is not json", "bad_json"),
        ("[1,2,3]", "bad_request"),
        ("{\"cmd\":\"teleport\"}", "unknown_command"),
        ("{\"cmd\":\"submit\"}", "bad_request"),
        ("{\"cmd\":\"submit\",\"workload\":\"nope\"}", "bad_request"),
        ("{\"cmd\":\"wait\",\"job\":\"j999\"}", "unknown_job"),
    ] {
        write_line(bad);
        let reply = read_reply();
        assert!(
            reply.contains(&format!("\"error\":\"{code}\"")),
            "{bad:?} should earn `{code}`, got: {reply}"
        );
    }
    // Same connection still works after six bad lines.
    write_line("{\"cmd\":\"ping\"}");
    assert!(read_reply().contains("\"type\":\"pong\""));

    let mut client = Client::connect(&addr).unwrap();
    assert_eq!(client.shutdown().unwrap(), Response::ShutdownStarted);
    daemon.join().unwrap().unwrap();
}

/// Shutdown mid-queue: accepted jobs all finish, none are lost, new
/// submissions are fenced out with a typed error.
#[test]
fn shutdown_mid_queue_drains_every_accepted_job() {
    let mut srv = Server::new(ServeConfig { workers: 2, ..ServeConfig::default() });
    let jobs: Vec<String> = (0..6)
        .map(|i| {
            let src = format!(
                "int a{i}[64]; void main() {{ int i; for (i = 0; i < 64; i++) {{ a{i}[i] = i; }} }}"
            );
            srv.submit(&source_spec(&src)).expect("submit").job
        })
        .collect();
    srv.begin_shutdown();
    let e = srv.submit(&workload_spec("fftc")).unwrap_err();
    assert_eq!(e.code, ErrorCode::ShuttingDown);
    srv.shutdown();
    for job in &jobs {
        assert_eq!(srv.poll(job).unwrap(), "done", "{job} lost in the drain");
    }
    let st = srv.stats();
    assert_eq!(st.computed, 6);
    assert_eq!((st.queue_depth, st.running), (0, 0));
}

/// Full client/daemon round trip over a socket with cache-hit counters
/// checked end to end (the CI serve-smoke job in miniature).
#[test]
fn socket_round_trip_with_counter_verified_cache_hit() {
    let sock = std::env::temp_dir().join(format!("foray-serve-rt-{}.sock", std::process::id()));
    let addr = ServeAddr::Unix(sock.clone());
    let server = Server::new(ServeConfig { workers: 1, ..ServeConfig::default() });
    let daemon = {
        let addr = addr.clone();
        std::thread::spawn(move || foray_serve::serve(server, &addr))
    };
    wait_for_socket(&sock);

    let mut client = Client::connect(&addr).unwrap();
    let spec = workload_spec("fftc");
    let (cold_hit, cold) = client.run(&spec).unwrap().unwrap();
    assert!(!cold_hit);
    let (warm_hit, warm) = client.run(&spec).unwrap().unwrap();
    assert!(warm_hit);
    assert_eq!(warm, cold, "cached bytes over the wire equal cold bytes");
    let Response::Stats(st) = client.stats().unwrap() else { panic!("stats reply") };
    assert_eq!(st.cache_hits, 1);
    assert_eq!(st.computed, 1);
    assert_eq!(client.shutdown().unwrap(), Response::ShutdownStarted);
    daemon.join().unwrap().unwrap();
    assert!(!sock.exists(), "socket file removed on exit");
}

fn wait_for_socket(path: &std::path::Path) {
    for _ in 0..300 {
        if path.exists() {
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("daemon never bound {}", path.display());
}

// ---------- cache-key digest properties ----------

mod digest_props {
    use super::*;
    use proptest::prelude::*;

    const BODIES: &[&str] = &[
        "int a[64]; void main() { int i; for (i = 0; i < 64; i++) { a[i] = i; } }",
        "int b[32]; void main() { int i; for (i = 0; i < 32; i++) { b[i] = 2 * i; } }",
        "int c[16]; void main() { int i; for (i = 0; i < 16; i++) { c[i] = i + 1; } }",
    ];

    fn arb_spec() -> impl Strategy<Value = JobSpec> {
        (
            (
                0usize..BODIES.len(),
                prop_oneof![Just(JobKind::Model), Just(JobKind::Report), Just(JobKind::Dse)],
                1u32..4,
                any::<bool>(),
            ),
            (
                prop_oneof![
                    Just(foray::SampleSpec::Full),
                    (2u64..10).prop_map(|n| foray::SampleSpec::EveryNth { n }),
                    (1u64..50).prop_map(|skip| foray::SampleSpec::Warmup { skip }),
                ],
                1u64..40,
                1u64..20,
                0u8..10,
            ),
        )
            .prop_map(|((body, kind, scale, tree), (sample, n_exec, n_loc, priority))| {
                JobSpec {
                    kind,
                    input: JobInput::Source(BODIES[body].to_owned()),
                    scale,
                    engine: if tree { foray::Engine::Tree } else { foray::Engine::Vm },
                    n_exec,
                    n_loc,
                    sample,
                    inputs: None,
                    priority,
                }
            })
    }

    fn key_of(spec: &JobSpec) -> String {
        resolve(spec).expect("resolvable").key
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        /// Must-hit: resubmission, priority changes, and wire field
        /// reordering never move the key.
        #[test]
        fn digest_is_stable_over_must_hit_perturbations(
            spec in arb_spec(),
            new_priority in 0u8..=9,
            seed in any::<u64>(),
        ) {
            let k = key_of(&spec);
            // Resubmission is stable.
            prop_assert_eq!(key_of(&spec), k.clone());
            // Priority is scheduling, not content.
            let mut p = spec.clone();
            p.priority = new_priority;
            prop_assert_eq!(key_of(&p), k.clone());
            // JSON field order on the wire is irrelevant: shuffle the
            // rendered submit line's top-level fields and re-parse.
            let line = spec.render_submit();
            let shuffled = shuffle_fields(&line, seed);
            let foray_serve::Request::Submit(back) = foray_serve::parse_request(&shuffled).unwrap()
            else { panic!("not a submit: {shuffled}") };
            prop_assert_eq!(key_of(&back), k);
        }

        /// Must-miss: every output-relevant field change moves the key.
        #[test]
        fn digest_moves_on_must_miss_perturbations(spec in arb_spec()) {
            let k = key_of(&spec);
            let mut engine = spec.clone();
            engine.engine = match spec.engine {
                foray::Engine::Vm => foray::Engine::Tree,
                foray::Engine::Tree => foray::Engine::Vm,
            };
            prop_assert_ne!(key_of(&engine), k.clone());

            let mut sample = spec.clone();
            sample.sample = match spec.sample {
                foray::SampleSpec::EveryNth { n } => foray::SampleSpec::EveryNth { n: n + 1 },
                _ => foray::SampleSpec::EveryNth { n: 2 },
            };
            prop_assert_ne!(key_of(&sample), k.clone());

            let mut filt = spec.clone();
            filt.n_exec += 1;
            prop_assert_ne!(key_of(&filt), k.clone());

            let mut ins = spec.clone();
            ins.inputs = Some(vec![1]);
            prop_assert_ne!(key_of(&ins), k.clone());

            // A one-character source edit moves the key.
            let JobInput::Source(src) = &spec.input else { panic!() };
            let mut edit = spec.clone();
            edit.input = JobInput::Source(src.replacen('i', "j", 1));
            prop_assert_ne!(key_of(&edit), k);
        }

        /// Scale is absorbed into the resolved source: for workloads it
        /// must miss (different generated program), and two workloads
        /// never collide with each other.
        #[test]
        fn workload_scale_and_identity_separate_keys(scale in 2u32..5) {
            let base = workload_spec("fftc");
            let mut scaled = base.clone();
            scaled.scale = scale;
            prop_assert_ne!(key_of(&scaled), key_of(&base));
            let other = workload_spec("gsmc");
            prop_assert_ne!(key_of(&other), key_of(&base));
        }
    }

    /// Deterministically shuffles the top-level fields of a one-line JSON
    /// object (splitmix64-seeded Fisher-Yates over re-rendered fields).
    fn shuffle_fields(line: &str, seed: u64) -> String {
        let json = foray_serve::json::Json::parse(line).expect("valid line");
        let foray_serve::json::Json::Obj(mut fields) = json else { panic!("not an object") };
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        for i in (1..fields.len()).rev() {
            let j = (next() % (i as u64 + 1)) as usize;
            fields.swap(i, j);
        }
        foray_serve::json::Json::Obj(fields).render()
    }

    /// Golden vector: pins the digest of a fixed spec. A change here is a
    /// cache-format break — bump `KEY_SCHEMA` and update deliberately.
    #[test]
    fn golden_digest_vector() {
        let spec = source_spec("void main() { }");
        let r = resolve(&spec).unwrap();
        assert_eq!(r.key, "9877c3d77aff7713");
        assert_eq!(foray_serve::KEY_SCHEMA, "foray-serve-key/v1");
    }
}
