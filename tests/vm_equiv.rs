//! Differential suite: the compiled VM engine against the tree-walking
//! oracle.
//!
//! The VM's contract is **byte-identity** — not "equivalent analysis" but
//! the same trace, record for record, byte for byte, for every program the
//! suite can throw at it:
//!
//! * every corpus workload at scale 1 and 2 (trace bytes, access and
//!   checkpoint counts, printed output, heap allocations);
//! * the full pipeline end to end (analysis, emitted FORAY model code,
//!   trace statistics);
//! * runtime *errors* (same variant, same message) on the failure paths;
//! * property tests over randomized inputs and scales.

use foray::ForayGen;
use foray_workloads::{all, Params};
use minic_sim::{Engine, RuntimeError, SimConfig, SimOutcome};
use minic_trace::Record;
use proptest::prelude::*;

fn config(engine: Engine) -> SimConfig {
    SimConfig { engine, ..SimConfig::default() }
}

fn run_engine(
    src: &str,
    inputs: &[i64],
    engine: Engine,
) -> Result<(SimOutcome, Vec<Record>), RuntimeError> {
    let prog = minic::frontend(src).expect("workload compiles");
    minic_sim::run(&prog, &config(engine), inputs)
}

/// Asserts full observable equality of one program run under both engines.
/// Returns the record count so callers can sanity-check coverage.
fn assert_engines_agree(name: &str, src: &str, inputs: &[i64]) -> usize {
    let tree = run_engine(src, inputs, Engine::Tree);
    let vm = run_engine(src, inputs, Engine::Vm);
    match (tree, vm) {
        (Ok((to, tr)), Ok((vo, vr))) => {
            // Byte-identity covers access records *and* checkpoints.
            let tb = minic_trace::binary::to_bytes(&tr);
            let vb = minic_trace::binary::to_bytes(&vr);
            if tb != vb {
                let at = tr.iter().zip(&vr).position(|(a, b)| a != b).map_or_else(
                    || format!("lengths {} vs {}", tr.len(), vr.len()),
                    |i| format!("record {i}: {:?} vs {:?}", tr[i], vr[i]),
                );
                panic!("{name}: trace divergence at {at}");
            }
            assert_eq!(to.printed, vo.printed, "{name}: printed output");
            assert_eq!(to.accesses, vo.accesses, "{name}: access count");
            assert_eq!(to.checkpoints, vo.checkpoints, "{name}: checkpoint count");
            assert_eq!(to.heap_allocations, vo.heap_allocations, "{name}: heap allocations");
            tr.len()
        }
        (Err(te), Err(ve)) => {
            assert_eq!(te, ve, "{name}: error divergence");
            assert_eq!(te.to_string(), ve.to_string(), "{name}: error message divergence");
            0
        }
        (t, v) => panic!(
            "{name}: one engine failed: tree={:?} vm={:?}",
            t.map(|(o, _)| o.accesses),
            v.map(|(o, _)| o.accesses)
        ),
    }
}

#[test]
fn all_workloads_byte_identical_at_scale_1_and_2() {
    for scale in [1u32, 2] {
        for w in all(Params { scale }) {
            let n =
                assert_engines_agree(&format!("{} scale {scale}", w.name), &w.source, &w.inputs);
            assert!(n > 1_000, "{} scale {scale}: trace suspiciously small ({n} records)", w.name);
        }
    }
}

#[test]
fn pipeline_end_to_end_identical() {
    // The whole Algorithm 1 flow — profile, analyze online, extract,
    // emit — must produce the same model code under either engine.
    for w in all(Params::default()) {
        let tree = w.run_with(ForayGen::new().sim(config(Engine::Tree))).unwrap();
        let vm = w.run_with(ForayGen::new().sim(config(Engine::Vm))).unwrap();
        assert_eq!(tree.analysis, vm.analysis, "{}: analysis", w.name);
        assert_eq!(tree.code, vm.code, "{}: emitted model code", w.name);
        assert_eq!(tree.trace_stats, vm.trace_stats, "{}: trace stats", w.name);
        assert_eq!(tree.hints.len(), vm.hints.len(), "{}: inline hints", w.name);
    }
}

#[test]
fn call_overhead_off_is_also_identical() {
    let w = foray_workloads::by_name("gsmc", Params::default()).unwrap();
    let cfg = |engine| SimConfig { model_call_overhead: false, engine, ..SimConfig::default() };
    let prog = w.frontend().unwrap();
    let (to, tr) = minic_sim::run(&prog, &cfg(Engine::Tree), &w.inputs).unwrap();
    let (vo, vr) = minic_sim::run(&prog, &cfg(Engine::Vm), &w.inputs).unwrap();
    assert_eq!(minic_trace::binary::to_bytes(&tr), minic_trace::binary::to_bytes(&vr));
    assert_eq!(to.printed, vo.printed);
}

#[test]
fn error_paths_match_the_oracle() {
    // Programs that fault: both engines must raise the same error, with
    // the same message, after the same trace prefix.
    let cases: &[(&str, &str)] = &[
        ("div-by-zero", "void main() { int x; x = 1 / (x - x); }"),
        ("rem-by-zero", "void main() { int x; x = 1 % (x - x); }"),
        ("deref-int", "void main() { int x; *x = 1; }"),
        ("index-int", "void main() { int x; int y; y = x[3]; }"),
        ("deep-recursion", "int f(int n) { return f(n + 1); } void main() { f(0); }"),
        ("addr-of-register", "int *p; void main() { int x; p = &x; }"),
        ("bad-memset", "char b[4]; void main() { memset(b, 0, 0 - 5); }"),
        ("bad-malloc", "char *p; void main() { p = malloc(0 - 1); }"),
        ("huge-local-array", "void main() { int big[67000000]; big[0] = 1; }"),
        ("compound-div-zero", "int g; void main() { g = 4; g /= g - g; }"),
    ];
    for (name, src) in cases {
        let mut prog = minic::parse(src).expect("parses");
        minic::check(&mut prog).expect("checks");
        let tree = minic_sim::run(&prog, &config(Engine::Tree), &[]);
        let vm = minic_sim::run(&prog, &config(Engine::Vm), &[]);
        let te = tree.expect_err(name);
        let ve = vm.expect_err(name);
        assert_eq!(te, ve, "{name}: error variant");
        assert_eq!(te.to_string(), ve.to_string(), "{name}: error message");
    }
}

#[test]
fn step_limit_guards_both_engines() {
    let prog = minic::frontend("void main() { while (1) { } }").unwrap();
    for engine in [Engine::Tree, Engine::Vm] {
        let cfg = SimConfig { max_steps: 10_000, engine, ..SimConfig::default() };
        assert_eq!(
            minic_sim::run(&prog, &cfg, &[]),
            Err(RuntimeError::StepLimitExceeded),
            "{engine:?}"
        );
    }
}

#[test]
fn scope_and_shadowing_semantics_match() {
    // Targeted programs for resolution edge cases the corpus does not
    // exercise: shadowing, use-before-redeclaration, loop-scoped arrays
    // reallocating per iteration, two-context locals.
    let cases: &[&str] = &[
        // Shadowing restores the outer binding.
        "void main() { int x; x = 1; { int x; x = 2; print_int(x); } print_int(x); }",
        // An initializer reads the *outer* binding of the same name.
        "void main() { int x; x = 7; { int x = x + 1; print_int(x); } }",
        // A local array declared inside a loop body reallocates per
        // iteration (the stack pointer keeps descending until return).
        "int f() { int i; int s; s = 0;
           for (i = 0; i < 4; i++) { int buf[8]; buf[0] = i; s += buf[0]; }
           return s; }
         void main() { print_int(f()); print_int(f()); }",
        // Local arrays at different call depths (paper Fig. 7).
        "int deep(int d) { int buf[4]; buf[0] = d; return buf[0]; }
         int wrap(int d) { return deep(d); }
         void main() { deep(1); wrap(2); }",
        // For-init declarations scope over the loop only.
        "int a[8]; void main() { for (int i = 0; i < 8; i++) { a[i] = i; } print_int(a[5]); }",
        // Pointer walks, ternaries, logical operators, compound ops.
        "char q[100]; char *p;
         void main() { int i; p = q;
           for (i = 0; i < 10; i++) { *p++ = i > 4 && i < 8 ? i : 0 - i; }
           print_int(q[6]); }",
        // Pointer difference, comparison, int** round trips.
        "int *rows[4]; int data[8];
         void main() { int i;
           for (i = 0; i < 4; i++) { rows[i] = &data[i * 2]; }
           rows[1][1] = 42;
           print_int(data[3]); print_int(&data[7] - &data[2]); }",
        // Heap traffic and library routines.
        "int *p; void main() { p = malloc(40); memset(p, 0, 10); int i;
           for (i = 0; i < 10; i++) { p[i] = rand(); }
           memcpy(p, p + 5, 13); free(p); print_int(p[1]); }",
        // break / continue / return inside nested instrumented loops.
        "int g[32];
         int f(int n) { int i; int s; s = 0;
           for (i = 0; i < n; i++) {
             if (i == 3) { continue; }
             while (1) { g[i] = i; break; }
             if (i == 7) { return s; }
             s += g[i];
           }
           return s; }
         void main() { print_int(f(10)); }",
        // do-while with global iterator and srand/rand interplay.
        "int n; void main() { srand(9); n = 0;
           do { n++; } while (rand() % 7 != 0);
           print_int(n); }",
    ];
    for (i, src) in cases.iter().enumerate() {
        assert_engines_agree(&format!("case {i}"), src, &[3, 1, 4, 1, 5]);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random inputs and scales: the engines stay byte-identical on every
    /// corpus workload regardless of the data the program consumes.
    #[test]
    fn engines_agree_on_random_inputs(
        which in 0usize..foray_workloads::all(Params { scale: 1 }).len(),
        scale in 1u32..=2,
        inputs in proptest::collection::vec(-5000i64..5000, 1..24),
    ) {
        let w = &all(Params { scale })[which];
        assert_engines_agree(&format!("{} scale {scale}", w.name), &w.source, &inputs);
    }
}
