//! FORAY-GEN is a fixpoint on its own output.
//!
//! The paper defines the FORAY model as "another C program" that *is* in
//! FORAY form. So extracting a model, emitting it as an executable program,
//! and running FORAY-GEN again must reproduce the same affine structure —
//! and the static baseline must see 100% of it (the emitted program is, by
//! construction, canonical `for` loops over affine array subscripts).

use foray::{FilterConfig, ForayGen};
use std::collections::{HashMap, HashSet};

/// Extracts `(coeff multiset per reference)` keyed by (terms, trips) for
/// order-insensitive comparison across runs.
fn shape_of(model: &foray::ForayModel) -> Vec<Vec<(i64, u64)>> {
    let mut shapes: Vec<Vec<(i64, u64)>> = model
        .refs
        .iter()
        .map(|r| {
            let mut terms: Vec<(i64, u64)> = r
                .terms
                .iter()
                .map(|t| {
                    let trip = r
                        .node_path
                        .get(t.level as usize - 1)
                        .and_then(|n| model.loops.get(n))
                        .map(|l| l.trip)
                        .unwrap_or(1);
                    (t.coeff, trip)
                })
                .collect();
            terms.sort_unstable();
            terms
        })
        .collect();
    shapes.sort();
    shapes
}

fn fixpoint_check(src: &str, filter: FilterConfig) {
    let first = ForayGen::new().filter(filter).run_source(src).expect("first run");
    assert!(first.model.ref_count() > 0, "model empty; test is vacuous");
    let emitted = foray::codegen::emit_minic(&first.model);

    let second = ForayGen::new()
        .filter(filter)
        .run_source(&emitted)
        .unwrap_or_else(|e| panic!("emitted model does not run: {e}\n{emitted}"));

    // Compare the read/write reference structure. The emitted program adds
    // one scalar sink (register-allocated: no memory traffic), so the
    // model-worthy references must correspond 1:1.
    let full_first: Vec<_> = shape_of(&first.model).into_iter().collect();
    let full_second: Vec<_> = shape_of(&second.model).into_iter().collect();
    assert_eq!(
        full_first, full_second,
        "model shape must be a fixpoint\n-- emitted --\n{emitted}\n-- second code --\n{}",
        second.code
    );
}

#[test]
fn single_nest_fixpoint() {
    fixpoint_check(
        "int a[256]; void main() { int i; for (i = 0; i < 64; i++) { a[i] = i; } }",
        FilterConfig::default(),
    );
}

#[test]
fn two_level_nest_fixpoint() {
    fixpoint_check(
        "int m[4096];
         void main() {
             int i; int j;
             for (i = 0; i < 16; i++) {
                 for (j = 0; j < 32; j++) { m[64 * i + j] = i + j; }
             }
         }",
        FilterConfig::default(),
    );
}

#[test]
fn pointer_walk_fixpoint() {
    // The interesting direction: a non-FORAY source whose model, once
    // emitted, is FORAY-form — and stays identical under re-extraction.
    fixpoint_check(
        "char q[2000]; char *p;
         void main() {
             int n;
             n = 0; p = q;
             while (n < 500) { *p++ = n; n++; }
         }",
        FilterConfig::default(),
    );
}

#[test]
fn negative_stride_fixpoint() {
    fixpoint_check(
        "int a[128];
         void main() { int i; for (i = 127; i >= 0; i--) { a[i] = i; } }",
        FilterConfig::default(),
    );
}

#[test]
fn figure4_fixpoint() {
    fixpoint_check(
        "char q[10000]; char *ptr;
         void main() {
             int i; int t1 = 90;
             ptr = q;
             while (t1 < 100) {
                 t1++;
                 ptr += 100;
                 for (i = 40; i > 30; i--) { *ptr++ = i * i % 256; }
             }
         }",
        FilterConfig { n_exec: 20, n_loc: 10 },
    );
}

#[test]
fn emitted_model_is_fully_static() {
    // The round-trip closes the paper's loop: the emitted model must be
    // 100% visible to the *static* baseline (that is its entire purpose).
    let src = "char q[2000]; char *p;
         void main() {
             int n;
             n = 0; p = q;
             while (n < 500) { *p++ = n; n++; }
         }";
    let first = ForayGen::new().run_source(src).expect("runs");
    let emitted = foray::codegen::emit_minic(&first.model);
    let second = ForayGen::new().run_source(&emitted).expect("emitted runs");

    let mut prog = minic::parse(&emitted).unwrap();
    minic::check(&mut prog).unwrap();
    let st = foray_baseline::analyze_program(&prog);
    let loops: HashSet<minic::LoopId> = st.canonical_loops.iter().copied().collect();
    let cmp = foray::CaptureComparison::compute(&second.model, &loops, &st.affine_instrs());
    assert_eq!(cmp.model_refs, cmp.static_refs, "emitted model must be fully static");
    assert_eq!(cmp.pct_refs_not_static(), 0.0);
}

#[test]
fn workload_models_re_execute() {
    // Every workload's model must at least compile and run as a program
    // (full shape fixpoints are asserted above on controlled cases; the
    // workload models include partial references whose constants are
    // data-dependent by definition).
    let mut checked = 0;
    let mut shape_fixpoints = HashMap::new();
    for w in foray_workloads::all(foray_workloads::Params::default()) {
        let out = w.run().expect("workload runs");
        let emitted = foray::codegen::emit_minic(&out.model);
        let again = ForayGen::new()
            .run_source(&emitted)
            .unwrap_or_else(|e| panic!("{}: emitted model fails: {e}\n{emitted}", w.name));
        // Full (non-partial) references must reproduce exactly.
        let full_in = out.model.refs.iter().filter(|r| !r.is_partial()).count();
        let full_out = again.model.refs.iter().filter(|r| !r.is_partial()).count();
        shape_fixpoints.insert(w.name, (full_in, full_out));
        assert!(full_out >= full_in.min(1), "{}: full refs vanished", w.name);
        checked += 1;
    }
    assert_eq!(checked as usize, foray_workloads::all(foray_workloads::Params::default()).len());
}
