//! Streaming pipeline lock-down.
//!
//! The fused streaming path (`foray::shard::analyze_streaming_with`)
//! promises three things at once, and this suite pins all of them:
//!
//! * **byte-identity** — the pipelined K-worker analysis equals the
//!   sequential [`foray::analyze`] result on every corpus workload at
//!   scale 1 and 2, for K ∈ {1, 2, 7, available parallelism};
//! * **bounded memory** — the buffered-record high-water mark reported
//!   by [`foray::StreamStats`] never exceeds the configured ceiling,
//!   even with pathologically tiny blocks, and that ceiling is far
//!   below the trace length (the whole point of streaming);
//! * **sampling commutes with sharding** — deterministic sampling
//!   ([`foray::SampleSpec`]) produces the same thinned analysis no
//!   matter how many workers run, and the identity specs (`every:1`,
//!   `warmup:0`) are exactly the full analysis.

use foray::shard::analyze_streaming_with;
use foray::{analyze, analyze_with, Analysis, AnalyzerConfig, SampleSpec, StreamConfig};
use foray_workloads::{all, Params};
use minic::CheckpointKind::{BodyBegin, BodyEnd, LoopBegin};
use minic_trace::{AccessKind, Record, RecordSource};
use proptest::prelude::*;

/// Worker counts the equivalence must hold for: degenerate, small,
/// prime, and whatever the host machine auto-detects.
fn shard_counts() -> Vec<usize> {
    let auto = foray::resolve_shards(0);
    let mut ks = vec![1, 2, 7];
    if !ks.contains(&auto) {
        ks.push(auto);
    }
    ks
}

/// Streaming analysis of an in-memory slice, returning the pipeline
/// stats alongside the analysis so callers can check the memory bound.
fn stream_with_stats(records: &[Record], config: AnalyzerConfig) -> (Analysis, foray::StreamStats) {
    match analyze_streaming_with(&config, |sink| records.stream_into(sink)) {
        Ok((analysis, _, stats)) => (analysis, stats),
        Err(infallible) => match infallible {},
    }
}

// ---------- the workload corpus, scale 1 and 2 ----------

#[test]
fn workloads_stream_identically_at_scale_1_and_2() {
    for scale in [1u32, 2] {
        for w in all(Params { scale }) {
            let prog = w.frontend().unwrap();
            let (_, records) =
                minic_sim::run(&prog, &minic_sim::SimConfig::default(), &w.inputs).unwrap();
            let seq = analyze(&records);
            for k in shard_counts() {
                let config = AnalyzerConfig { shards: k, ..AnalyzerConfig::default() };
                let (streamed, stats) = stream_with_stats(&records, config);
                let ctx = format!("{} scale={scale} K={k}", w.name);
                assert_eq!(streamed, seq, "{ctx}: streaming diverged from sequential");
                assert_eq!(stats.records, records.len() as u64, "{ctx}: record count");
                assert!(
                    stats.peak_buffered_records <= stats.max_buffered_records,
                    "{ctx}: peak {} over ceiling {}",
                    stats.peak_buffered_records,
                    stats.max_buffered_records
                );
            }
        }
    }
}

// ---------- bounded memory, even with tiny blocks ----------

/// The regression test for the streaming memory bound: with small blocks
/// the pipeline must hold only a sliver of the trace at any moment, and
/// the observed high-water mark must respect the advertised ceiling.
#[test]
fn tiny_blocks_stay_within_the_configured_ceiling() {
    let w = foray_workloads::by_name("fftc", Params { scale: 2 }).unwrap();
    let prog = w.frontend().unwrap();
    let (_, records) = minic_sim::run(&prog, &minic_sim::SimConfig::default(), &w.inputs).unwrap();
    let seq = analyze(&records);
    // Both schedules — inline (single-context) and threaded hand-off —
    // must respect the same advertised ceiling.
    for force_worker_threads in [false, true] {
        let stream = StreamConfig { block_records: 64, channel_blocks: 1, force_worker_threads };
        let config = AnalyzerConfig { shards: 4, stream, ..AnalyzerConfig::default() };
        let ceiling = stream.max_buffered_records(4);
        let (streamed, stats) = stream_with_stats(&records, config);
        assert_eq!(streamed, seq);
        assert_eq!(stats.max_buffered_records, ceiling);
        assert!(
            stats.peak_buffered_records <= ceiling,
            "peak {} over ceiling {ceiling} (force_worker_threads={force_worker_threads})",
            stats.peak_buffered_records
        );
        // The bound is what makes this *streaming*: the pipeline held
        // under 3% of the trace while a buffered analyzer holds all of it.
        assert!(
            ceiling < stats.records / 30,
            "ceiling {ceiling} is not small next to the {}-record trace",
            stats.records
        );
    }
}

// ---------- sampling commutes with sharding ----------

/// Arbitrary records with instruction addresses drawn from a small pool,
/// so references accumulate real multi-access state (matching the
/// `shard_equiv` generator).
fn arb_record() -> impl Strategy<Value = Record> {
    prop_oneof![
        (0u32..8, 0usize..3).prop_map(|(l, k)| {
            let kind = [LoopBegin, BodyBegin, BodyEnd][k];
            Record::checkpoint(l, kind)
        }),
        (0u32..12, any::<u32>(), any::<bool>()).prop_map(|(site, a, w)| {
            Record::access(
                0x40_0000 + 4 * site,
                a,
                if w { AccessKind::Write } else { AccessKind::Read },
            )
        }),
    ]
}

/// Every non-identity sampling mode, parameterized.
fn arb_sample() -> impl Strategy<Value = SampleSpec> {
    prop_oneof![
        (2u64..6).prop_map(|n| SampleSpec::EveryNth { n }),
        (0u64..24).prop_map(|skip| SampleSpec::Warmup { skip }),
        (1u64..8, any::<u64>()).prop_map(|(size, seed)| SampleSpec::Reservoir { size, seed }),
    ]
}

// ---------- compacted checkpoints ----------

/// Record streams heavy with checkpoint *runs* — loop iterations carrying
/// no accesses, the exact shape the router's context log compacts into
/// `IterRun` deltas — interleaved with bursty multi-site accesses. Drawn
/// segment-wise so empty-iteration runs actually occur (a uniform
/// record-by-record generator almost never produces them).
fn arb_checkpoint_heavy() -> impl Strategy<Value = Vec<Record>> {
    let segment = prop_oneof![
        // A run of empty body iterations of one loop.
        (0u32..6, 1u32..40).prop_map(|(l, runs)| {
            let mut seg = Vec::with_capacity(2 * runs as usize);
            for _ in 0..runs {
                seg.push(Record::checkpoint(l, BodyBegin));
                seg.push(Record::checkpoint(l, BodyEnd));
            }
            seg
        }),
        // A loop entry (possibly re-entering the same id: sibling visit).
        (0u32..6).prop_map(|l| vec![Record::checkpoint(l, LoopBegin)]),
        // A burst of accesses from a few sites (maps to few shards).
        proptest::collection::vec(
            (0u32..10, any::<u32>(), any::<bool>()).prop_map(|(site, a, w)| {
                Record::access(
                    0x40_0000 + 4 * site,
                    a,
                    if w { AccessKind::Write } else { AccessKind::Read },
                )
            }),
            1..12,
        ),
        // A stray unpaired checkpoint, to hit half-open-run sealing.
        (0u32..6, 0usize..3).prop_map(|(l, k)| {
            let kind = [LoopBegin, BodyBegin, BodyEnd][k];
            vec![Record::checkpoint(l, kind)]
        }),
    ];
    proptest::collection::vec(segment, 0..40).prop_map(|segs| segs.concat())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The checkpoint-compaction lock-down: for arbitrary run-heavy
    /// streams, every worker count and both schedules reconstruct the
    /// sequential analysis byte-for-byte, and the peak-memory ceiling
    /// holds even with blocks small enough to split runs across blocks.
    #[test]
    fn compacted_checkpoint_streams_match_sequential(
        records in arb_checkpoint_heavy(),
        force_worker_threads in any::<bool>(),
    ) {
        let seq = analyze(&records);
        for k in [1usize, 2, 7, 0] {
            let stream = StreamConfig {
                block_records: 32,
                channel_blocks: 1,
                force_worker_threads,
            };
            let config = AnalyzerConfig { shards: k, stream, ..AnalyzerConfig::default() };
            let (streamed, stats) = stream_with_stats(&records, config);
            prop_assert_eq!(
                &streamed, &seq,
                "K={} force={} diverged from sequential", k, force_worker_threads
            );
            prop_assert!(
                stats.peak_buffered_records <= stats.max_buffered_records,
                "K={} force={}: peak {} over ceiling {}",
                k, force_worker_threads,
                stats.peak_buffered_records, stats.max_buffered_records
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn sampled_analysis_is_deterministic_across_worker_counts(
        records in proptest::collection::vec(arb_record(), 0..300),
        sample in arb_sample(),
    ) {
        let seq = analyze_with(
            &records,
            AnalyzerConfig { sample, ..AnalyzerConfig::default() },
        );
        for k in [1usize, 2, 0] {
            let config = AnalyzerConfig { shards: k, sample, ..AnalyzerConfig::default() };
            let (streamed, _) = stream_with_stats(&records, config);
            prop_assert_eq!(&streamed, &seq, "sample {:?} K={}", sample, k);
        }
    }

    #[test]
    fn identity_sampling_specs_change_nothing(
        records in proptest::collection::vec(arb_record(), 0..300),
    ) {
        let full = analyze(&records);
        for sample in [SampleSpec::EveryNth { n: 1 }, SampleSpec::Warmup { skip: 0 }] {
            let seq = analyze_with(
                &records,
                AnalyzerConfig { sample, ..AnalyzerConfig::default() },
            );
            prop_assert_eq!(&seq, &full, "sequential {:?}", sample);
            let config = AnalyzerConfig { shards: 2, sample, ..AnalyzerConfig::default() };
            let (streamed, _) = stream_with_stats(&records, config);
            prop_assert_eq!(&streamed, &full, "streaming {:?}", sample);
        }
    }
}
