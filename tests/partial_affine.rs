//! The paper's Fig. 7: cases where one affine function cannot describe all
//! access addresses, and partial affine index expressions take over.

use foray::{FilterConfig, ForayGen};

/// Fig. 7, left: a local array whose allocation moves between calls. Our
/// simulator allocates frames on a descending stack, so the address changes
/// whenever the call *depth* changes; alternating a direct call with a
/// wrapped call reproduces the reallocation behaviour.
const REALLOCATED_LOCAL: &str = "int src[4000];
int sink;
int foo(int x) {
    int a[100];
    int i; int j; int ret;
    ret = 0;
    for (i = 0; i < 10; i++) {
        for (j = 0; j < 10; j++) {
            a[j + 10 * i] = src[j] + x;
            ret += a[j + 10 * i];
        }
    }
    return ret;
}
int wrap(int x) { return foo(x); }
void main() {
    int x; int tmp;
    tmp = 0;
    for (x = 0; x < 10; x++) {
        if (x % 2) { tmp += foo(x); } else { tmp += wrap(x); }
    }
    sink = tmp;
}";

/// Fig. 7, right: a global array accessed through a data-dependent offset
/// parameter.
const DATA_DEPENDENT_OFFSET: &str = "int A[4000];
int sink;
int foo(int offset) {
    int ret; int i; int j;
    ret = 0;
    for (i = 0; i < 10; i++) {
        for (j = 0; j < 10; j++) {
            ret += A[j + 10 * i + offset];
        }
    }
    return ret;
}
void main() {
    int x; int tmp;
    tmp = 0;
    for (x = 0; x < 10; x++) {
        tmp += foo(input(x));
    }
    sink = tmp;
}";

#[test]
fn reallocated_local_array_yields_partial_expressions() {
    let out = ForayGen::new()
        .filter(FilterConfig { n_exec: 20, n_loc: 10 })
        .run_source(REALLOCATED_LOCAL)
        .expect("runs");
    // a[j + 10*i] (read + write): the inner two iterators are exact, the
    // constant moves with the frame — partial with window 2 of nest 3.
    // NOTE: `foo` is called at two different depths → also two contexts.
    let partials: Vec<_> = out.model.refs.iter().filter(|r| r.is_partial()).collect();
    assert!(!partials.is_empty(), "expected partial refs\n{}", out.code);
    for r in &partials {
        assert!(r.window >= 2, "inner nest must stay predictable: {r:?}");
        assert_eq!(r.terms[0].coeff, 4, "int stride: {r:?}");
        assert_eq!(
            r.terms.iter().find(|t| t.level == 2).map(|t| t.coeff),
            Some(40),
            "row stride: {r:?}"
        );
    }
    // The code annotates them.
    assert!(out.code.contains("partial"), "{}", out.code);
}

#[test]
fn data_dependent_offset_yields_partial_expressions() {
    let out = ForayGen::new()
        .inputs(vec![0, 700, 160, 2400, 1000, 40, 3333, 90, 2048, 512])
        .run_source(DATA_DEPENDENT_OFFSET)
        .expect("runs");
    let partials: Vec<_> = out.model.refs.iter().filter(|r| r.is_partial()).collect();
    assert_eq!(partials.len(), 1, "{}", out.code);
    let r = partials[0];
    assert_eq!(r.nest, 3);
    assert_eq!(r.window, 2, "i and j predictable, x is not");
    assert_eq!(r.terms.len(), 2);
    assert_eq!(r.terms[0].coeff, 4);
    assert_eq!(r.terms[1].coeff, 40);
}

#[test]
fn affine_offsets_stay_full() {
    // Control: if the offset is affine in the outer loop, no partiality.
    let out = ForayGen::new()
        .run_source(
            "int A[4000];
             int sink;
             int foo(int offset) {
                 int ret; int i;
                 ret = 0;
                 for (i = 0; i < 10; i++) { ret += A[i + offset]; }
                 return ret;
             }
             void main() {
                 int x; int tmp;
                 tmp = 0;
                 for (x = 0; x < 30; x++) { tmp += foo(100 * x); }
                 sink = tmp;
             }",
        )
        .expect("runs");
    let a_refs: Vec<_> = out.model.refs.iter().filter(|r| r.nest == 2).collect();
    assert_eq!(a_refs.len(), 1, "{}", out.code);
    assert!(!a_refs[0].is_partial());
    assert_eq!(a_refs[0].terms[1].coeff, 400);
}

#[test]
fn spm_can_still_buffer_the_partial_window() {
    // The paper's point: partial expressions still let SPM techniques
    // analyze the inner loops "as if no other outer loops existed".
    let out = ForayGen::new()
        .inputs(vec![0, 700, 160, 2400, 1000, 40, 3333, 90, 2048, 512])
        .run_source(DATA_DEPENDENT_OFFSET)
        .expect("runs");
    // Buffering options exist for the partial reference but stop at its
    // window. (This particular pattern touches each element once per
    // activation, so the reuse filter rightly rejects the options — the
    // point here is that the *analysis* can reason about the inner loops.)
    let partial_idx = out.model.refs.iter().position(|r| r.is_partial()).unwrap();
    let r = &out.model.refs[partial_idx];
    let options = foray_spm::candidates_for(partial_idx, r, &out.model);
    assert!(!options.is_empty(), "partial ref must still be analyzable");
    for c in &options {
        assert!(c.level <= r.window);
        assert!(c.reuse_factor() <= 1.0 + 1e-9, "this pattern has no reuse");
    }
}
