//! Sequential/sharded equivalence lock-down.
//!
//! The sharded analyzer (`foray::shard`) promises an `Analysis` that is
//! *identical* to the sequential one — same reference order, same fitted
//! affine states, same loop tree, same footprints and access counts. This
//! suite pins that promise on three fronts:
//!
//! * randomly generated record streams (property test), K ∈ {1, 2, 7,
//!   available parallelism};
//! * the six mini-C workloads at scale 1 **and** scale 2, both the
//!   zero-copy offline path and the sink-driven online path;
//! * the batch API: two runs over the same job list render byte-identical
//!   reports (no merge-order nondeterminism leaks from thread scheduling).

use foray::{analyze, analyze_sharded, Analysis, BatchJob, ForayGen, ShardedAnalyzer};
use foray_workloads::{all, Params};
use minic::CheckpointKind::{BodyBegin, BodyEnd, LoopBegin};
use minic_trace::{AccessKind, Record, TraceSink};
use proptest::prelude::*;

/// Shard counts the equivalence must hold for: degenerate, small, prime,
/// and whatever the host machine auto-detects.
fn shard_counts() -> Vec<usize> {
    let auto = foray::resolve_shards(0);
    let mut ks = vec![1, 2, 7];
    if !ks.contains(&auto) {
        ks.push(auto);
    }
    ks
}

/// Field-by-field equivalence with readable failure messages, then the
/// full structural equality as a backstop.
fn assert_equivalent(seq: &Analysis, sharded: &Analysis, ctx: &str) {
    assert_eq!(seq.accesses(), sharded.accesses(), "{ctx}: access counts differ");
    assert_eq!(seq.refs().len(), sharded.refs().len(), "{ctx}: reference counts differ");
    for (i, (a, b)) in seq.refs().iter().zip(sharded.refs()).enumerate() {
        assert_eq!(a.instr, b.instr, "{ctx}: ref {i} out of order (instruction)");
        assert_eq!(a.node, b.node, "{ctx}: ref {i} attached to a different node");
        assert_eq!(a.class, b.class, "{ctx}: ref {i} classified differently");
        assert_eq!(
            a.state.coefficients(),
            b.state.coefficients(),
            "{ctx}: ref {i} ({}) coefficients differ",
            a.instr
        );
        assert_eq!(a.state.constant(), b.state.constant(), "{ctx}: ref {i} constant differs");
        assert_eq!(a.state.window(), b.state.window(), "{ctx}: ref {i} window differs");
        assert_eq!(a.state.footprint(), b.state.footprint(), "{ctx}: ref {i} footprint differs");
        assert_eq!(
            (a.reads, a.writes),
            (b.reads, b.writes),
            "{ctx}: ref {i} access counters differ"
        );
        assert_eq!(a.state, b.state, "{ctx}: ref {i} affine state differs");
    }
    assert_eq!(
        seq.tree().render(),
        sharded.tree().render(),
        "{ctx}: reconstructed loop trees differ"
    );
    assert_eq!(seq, sharded, "{ctx}: analyses differ structurally");
}

// ---------- random record streams ----------

/// Arbitrary records with instruction addresses drawn from a small pool,
/// so references accumulate real multi-access affine state instead of
/// degenerating into single-observation entries.
fn arb_record() -> impl Strategy<Value = Record> {
    prop_oneof![
        (0u32..8, 0usize..3).prop_map(|(l, k)| {
            let kind = [LoopBegin, BodyBegin, BodyEnd][k];
            Record::checkpoint(l, kind)
        }),
        (0u32..12, any::<u32>(), any::<bool>()).prop_map(|(site, a, w)| {
            Record::access(
                0x40_0000 + 4 * site,
                a,
                if w { AccessKind::Write } else { AccessKind::Read },
            )
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_streams_analyze_identically_under_any_sharding(
        records in proptest::collection::vec(arb_record(), 0..300),
    ) {
        let seq = analyze(&records);
        for k in shard_counts() {
            let sharded = analyze_sharded(&records, k);
            prop_assert_eq!(&sharded, &seq, "K={}", k);
        }
    }

    #[test]
    fn sink_and_slice_modes_agree_on_random_streams(
        records in proptest::collection::vec(arb_record(), 0..300),
        k in 1usize..9,
    ) {
        let slice_mode = analyze_sharded(&records, k);
        let mut sink_mode = ShardedAnalyzer::with_config(foray::AnalyzerConfig {
            shards: k,
            ..foray::AnalyzerConfig::default()
        });
        for r in &records {
            sink_mode.record(r);
        }
        prop_assert_eq!(sink_mode.into_analysis(), slice_mode);
    }
}

// ---------- the workload corpus, scale 1 and 2 ----------

#[test]
fn workloads_analyze_identically_under_sharding_at_scale_1_and_2() {
    for scale in [1u32, 2] {
        for w in all(Params { scale }) {
            let prog = w.frontend().unwrap();
            let (_, records) =
                minic_sim::run(&prog, &minic_sim::SimConfig::default(), &w.inputs).unwrap();
            let seq = analyze(&records);
            for k in shard_counts() {
                let sharded = analyze_sharded(&records, k);
                assert_equivalent(&seq, &sharded, &format!("{} scale={scale} K={k}", w.name));
            }
            // Online sink routing must agree too (one representative K).
            let mut online = ShardedAnalyzer::with_config(foray::AnalyzerConfig {
                shards: 4,
                ..foray::AnalyzerConfig::default()
            });
            online.consume(&records);
            assert_equivalent(
                &seq,
                &online.into_analysis(),
                &format!("{} scale={scale} online K=4", w.name),
            );
        }
    }
}

// ---------- batch determinism ----------

/// Renders one batch result as the textual report a consumer would emit.
fn render_batch(results: &[Result<foray::ForayGenOutput, foray::PipelineError>]) -> String {
    let mut out = String::new();
    for r in results {
        let o = r.as_ref().expect("workload runs");
        out.push_str(&o.code);
        out.push_str(&o.analysis.tree().render());
        out.push_str(&format!(
            "accesses={} refs={} model_refs={}\n",
            o.analysis.accesses(),
            o.analysis.refs().len(),
            o.model.ref_count()
        ));
    }
    out
}

#[test]
fn sharded_batch_report_is_byte_identical_across_runs() {
    let jobs: Vec<BatchJob> =
        all(Params::default()).iter().map(|w| w.batch_job(ForayGen::new().sharded(true))).collect();
    let first = render_batch(&foray::analyze_batch(&jobs, 0));
    let second = render_batch(&foray::analyze_batch(&jobs, 0));
    assert!(!first.is_empty());
    assert_eq!(first, second, "thread scheduling leaked into the batch report");
}
