//! Whole-suite integration: every workload runs through Phase I and
//! Phase II, the experiment tables are computable, and everything is
//! deterministic.

use foray::{CaptureComparison, LoopBreakdown, MemoryBehavior};
use foray_workloads::{all, Params};
use std::collections::HashSet;

#[test]
fn every_workload_produces_a_nonempty_model() {
    for w in all(Params::default()) {
        let out = w.run().unwrap_or_else(|e| panic!("{} failed: {e}", w.name));
        assert!(out.model.ref_count() >= 1, "{} produced an empty model", w.name);
        assert!(!out.code.is_empty(), "{} emitted no code", w.name);
        assert!(out.sim.accesses > 1_000, "{} is too small to be meaningful", w.name);
    }
}

#[test]
fn tables_are_computable_for_every_workload() {
    for w in all(Params::default()) {
        let out = w.run().unwrap();
        let prog = {
            let mut p = minic::parse(&w.source).unwrap();
            minic::check(&mut p).unwrap();
            p
        };
        // Table I.
        let t1 = LoopBreakdown::compute(&w.source, &prog, &out.analysis);
        assert!(t1.total_loops >= 2, "{}: {t1:?}", w.name);
        assert_eq!(
            t1.total_loops,
            t1.for_loops + t1.while_loops + t1.do_loops,
            "{}: loop kinds must partition",
            w.name
        );
        // Table II.
        let st = foray_baseline::analyze_program(&prog);
        let loops: HashSet<minic::LoopId> = st.canonical_loops.iter().copied().collect();
        let t2 = CaptureComparison::compute(&out.model, &loops, &st.affine_instrs());
        assert_eq!(t2.model_refs as usize, out.model.ref_count());
        assert!(t2.static_refs <= t2.model_refs);
        // Table III.
        let t3 = MemoryBehavior::compute(&out.analysis, &out.model);
        assert_eq!(t3.total_accesses, out.sim.accesses);
        assert!(t3.model_accesses <= t3.total_accesses);
        assert!(t3.lib_accesses <= t3.total_accesses);
        assert!(t3.model_footprint <= t3.total_footprint);
        assert!(
            t3.model_footprint + t3.lib_footprint + t3.other_footprint >= t3.total_footprint,
            "{}: footprint classes must cover the total",
            w.name
        );
    }
}

#[test]
fn profiling_is_deterministic() {
    for w in all(Params::default()) {
        let a = w.run().unwrap();
        let b = w.run().unwrap();
        assert_eq!(a.sim.accesses, b.sim.accesses, "{}", w.name);
        assert_eq!(a.sim.printed, b.sim.printed, "{}", w.name);
        assert_eq!(a.code, b.code, "{}", w.name);
    }
}

#[test]
fn headline_average_gain_is_about_two_x() {
    // The paper's summary claim: FORAY-GEN doubles the number of
    // analyzable references on average. Our workloads are analogues, not
    // copies, so assert the shape: mean gain comfortably above 1.5x.
    let mut gains = Vec::new();
    for w in all(Params::default()) {
        let out = w.run().unwrap();
        let mut prog = minic::parse(&w.source).unwrap();
        minic::check(&mut prog).unwrap();
        let st = foray_baseline::analyze_program(&prog);
        let loops: HashSet<minic::LoopId> = st.canonical_loops.iter().copied().collect();
        let cmp = CaptureComparison::compute(&out.model, &loops, &st.affine_instrs());
        // adpcm-style benches have zero static refs; cap the ratio at the
        // model size (the paper reports them as 100% not-in-FORAY-form).
        let gain = cmp.gain().unwrap_or(cmp.model_refs as f64);
        gains.push((w.name, gain));
    }
    let mean = gains.iter().map(|(_, g)| g).sum::<f64>() / gains.len() as f64;
    assert!(mean >= 1.5, "mean gain {mean:.2} too small: {gains:?}");
}

#[test]
fn phase_two_finds_buffers_in_reuse_heavy_workloads() {
    let flow = foray_spm::SpmFlow::default();
    let mut any_savings = 0;
    for w in all(Params::default()) {
        let out = w.run().unwrap();
        let report = flow.run(&out.model, 8 * 1024);
        if report.selection.savings_nj > 0.0 {
            any_savings += 1;
        }
    }
    assert!(any_savings >= 3, "only {any_savings} workloads benefited from an SPM");
}

#[test]
fn scale_two_recovers_the_scale_one_coefficients() {
    // `Params::scale` grows trip counts and data sizes but not the access
    // *pattern*: every model reference keeps the same participating
    // iterator levels, its element stride (innermost coefficient) is
    // scale-invariant, and outer coefficients are either invariant
    // (fixed-size inner dimensions, e.g. 8x8 DCT blocks) or multiply by
    // exactly the scale (strides that span a scaled array dimension, e.g.
    // jpegc's row stride). Instruction addresses are structural (site
    // indices), so references match across scales by (instruction, node).
    use std::collections::HashMap;
    const SCALE: i64 = 2;
    let small = all(Params { scale: 1 });
    let big = all(Params { scale: SCALE as u32 });
    for (w1, w2) in small.into_iter().zip(big) {
        assert_eq!(w1.name, w2.name);
        let out1 = w1.run().unwrap_or_else(|e| panic!("{} scale 1 failed: {e}", w1.name));
        let out2 = w2.run().unwrap_or_else(|e| panic!("{} scale 2 failed: {e}", w2.name));
        // Trip counts are *not* scale-invariant: the workload really grew.
        assert!(
            out2.sim.accesses > out1.sim.accesses,
            "{}: scale 2 must access more memory ({} vs {})",
            w1.name,
            out2.sim.accesses,
            out1.sim.accesses
        );
        let by_key: HashMap<_, _> =
            out2.model.refs.iter().map(|r| ((r.instr, r.node), r)).collect();
        for r1 in &out1.model.refs {
            let r2 = by_key.get(&(r1.instr, r1.node)).unwrap_or_else(|| {
                panic!("{}: {} vanished from the scale-2 model", w1.name, r1.array_name())
            });
            let t1: Vec<(u32, i64)> = r1.terms.iter().map(|t| (t.level, t.coeff)).collect();
            let t2: HashMap<u32, i64> = r2.terms.iter().map(|t| (t.level, t.coeff)).collect();
            assert_eq!(
                t1.len(),
                t2.len(),
                "{}: {} changed its set of iterator terms",
                w1.name,
                r1.array_name()
            );
            for (level, c1) in t1 {
                let c2 = *t2.get(&level).unwrap_or_else(|| {
                    panic!("{}: {} lost level-{level} term", w1.name, r1.array_name())
                });
                if level == 1 {
                    assert_eq!(
                        c1,
                        c2,
                        "{}: {} element stride changed with scale",
                        w1.name,
                        r1.array_name()
                    );
                } else {
                    assert!(
                        c2 == c1 || c2 == SCALE * c1,
                        "{}: {} level-{level} coefficient {c1} became {c2} \
                         (neither invariant nor scaled)",
                        w1.name,
                        r1.array_name()
                    );
                }
            }
        }
        assert_eq!(
            out1.model.ref_count(),
            out2.model.ref_count(),
            "{}: scaling changed the number of model references",
            w1.name
        );
    }
}

#[test]
fn online_mode_is_constant_space_compatible() {
    // The online analyzer never materializes the trace; verify the
    // pipeline's access totals match an explicit offline trace pass.
    let w = foray_workloads::by_name("fftc", Params::default()).unwrap();
    let out = w.run().unwrap();
    let prog = w.frontend().unwrap();
    let (_, records) = minic_sim::run(&prog, &minic_sim::SimConfig::default(), &w.inputs).unwrap();
    let offline = foray::analyze(&records);
    assert_eq!(offline.refs().len(), out.analysis.refs().len());
    assert_eq!(offline.accesses(), out.analysis.accesses());
}
