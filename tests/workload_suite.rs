//! Whole-suite integration: every workload runs through Phase I and
//! Phase II, the experiment tables are computable, and everything is
//! deterministic.

use foray::{CaptureComparison, LoopBreakdown, MemoryBehavior};
use foray_workloads::{all, Params};
use std::collections::HashSet;

#[test]
fn every_workload_produces_a_nonempty_model() {
    for w in all(Params::default()) {
        let out = w.run().unwrap_or_else(|e| panic!("{} failed: {e}", w.name));
        assert!(out.model.ref_count() >= 1, "{} produced an empty model", w.name);
        assert!(!out.code.is_empty(), "{} emitted no code", w.name);
        assert!(out.sim.accesses > 1_000, "{} is too small to be meaningful", w.name);
    }
}

#[test]
fn tables_are_computable_for_every_workload() {
    for w in all(Params::default()) {
        let out = w.run().unwrap();
        let prog = {
            let mut p = minic::parse(&w.source).unwrap();
            minic::check(&mut p).unwrap();
            p
        };
        // Table I.
        let t1 = LoopBreakdown::compute(&w.source, &prog, &out.analysis);
        assert!(t1.total_loops >= 2, "{}: {t1:?}", w.name);
        assert_eq!(
            t1.total_loops,
            t1.for_loops + t1.while_loops + t1.do_loops,
            "{}: loop kinds must partition",
            w.name
        );
        // Table II.
        let st = foray_baseline::analyze_program(&prog);
        let loops: HashSet<minic::LoopId> = st.canonical_loops.iter().copied().collect();
        let t2 = CaptureComparison::compute(&out.model, &loops, &st.affine_instrs());
        assert_eq!(t2.model_refs as usize, out.model.ref_count());
        assert!(t2.static_refs <= t2.model_refs);
        // Table III.
        let t3 = MemoryBehavior::compute(&out.analysis, &out.model);
        assert_eq!(t3.total_accesses, out.sim.accesses);
        assert!(t3.model_accesses <= t3.total_accesses);
        assert!(t3.lib_accesses <= t3.total_accesses);
        assert!(t3.model_footprint <= t3.total_footprint);
        assert!(
            t3.model_footprint + t3.lib_footprint + t3.other_footprint >= t3.total_footprint,
            "{}: footprint classes must cover the total",
            w.name
        );
    }
}

#[test]
fn profiling_is_deterministic() {
    for w in all(Params::default()) {
        let a = w.run().unwrap();
        let b = w.run().unwrap();
        assert_eq!(a.sim.accesses, b.sim.accesses, "{}", w.name);
        assert_eq!(a.sim.printed, b.sim.printed, "{}", w.name);
        assert_eq!(a.code, b.code, "{}", w.name);
    }
}

#[test]
fn headline_average_gain_is_about_two_x() {
    // The paper's summary claim: FORAY-GEN doubles the number of
    // analyzable references on average. Our workloads are analogues, not
    // copies, so assert the shape: mean gain comfortably above 1.5x.
    let mut gains = Vec::new();
    for w in all(Params::default()) {
        let out = w.run().unwrap();
        let mut prog = minic::parse(&w.source).unwrap();
        minic::check(&mut prog).unwrap();
        let st = foray_baseline::analyze_program(&prog);
        let loops: HashSet<minic::LoopId> = st.canonical_loops.iter().copied().collect();
        let cmp = CaptureComparison::compute(&out.model, &loops, &st.affine_instrs());
        // adpcm-style benches have zero static refs; cap the ratio at the
        // model size (the paper reports them as 100% not-in-FORAY-form).
        let gain = cmp.gain().unwrap_or(cmp.model_refs as f64);
        gains.push((w.name, gain));
    }
    let mean = gains.iter().map(|(_, g)| g).sum::<f64>() / gains.len() as f64;
    assert!(mean >= 1.5, "mean gain {mean:.2} too small: {gains:?}");
}

#[test]
fn phase_two_finds_buffers_in_reuse_heavy_workloads() {
    let flow = foray_spm::SpmFlow::default();
    let mut any_savings = 0;
    for w in all(Params::default()) {
        let out = w.run().unwrap();
        let report = flow.run(&out.model, 8 * 1024);
        if report.selection.savings_nj > 0.0 {
            any_savings += 1;
        }
    }
    assert!(any_savings >= 3, "only {any_savings} workloads benefited from an SPM");
}

#[test]
fn online_mode_is_constant_space_compatible() {
    // The online analyzer never materializes the trace; verify the
    // pipeline's access totals match an explicit offline trace pass.
    let w = foray_workloads::by_name("fftc", Params::default()).unwrap();
    let out = w.run().unwrap();
    let prog = w.frontend().unwrap();
    let (_, records) = minic_sim::run(&prog, &minic_sim::SimConfig::default(), &w.inputs).unwrap();
    let offline = foray::analyze(&records);
    assert_eq!(offline.refs().len(), out.analysis.refs().len());
    assert_eq!(offline.accesses(), out.analysis.accesses());
}
